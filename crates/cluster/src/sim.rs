//! Deterministic in-process multi-node harness.
//!
//! [`SimCluster`] runs N real [`ssj_serve::Server`] instances inside one
//! process and implements [`Transport`] by pushing each request line
//! through the *real* wire codec — `wire::parse_request` on the way in,
//! `wire::encode_response` on the way out — so the router exercises
//! exactly the bytes a TCP deployment exchanges, minus the socket. That
//! makes multi-node runs:
//!
//! * **deterministic** — calls are synchronous and single-file; a seeded
//!   driver (difftest, crashtest) reproduces a run exactly from its seed;
//! * **faultable** — [`SimCluster::kill`], [`SimCluster::restart`], and
//!   [`SimCluster::partition`] turn nodes unreachable the same way a dead
//!   TCP peer does ([`TransportError::Unreachable`]), and durable nodes
//!   restart by recovering from their own data directories.
//!
//! The harness is the first-class deliverable of the cluster subsystem:
//! every distributed claim in DESIGN.md §5j is checked against it before
//! it is ever pointed at real sockets.

use crate::transport::{Transport, TransportError};
use ssj_serve::{wire, Handle, Server, ServerConfig};
use std::path::PathBuf;

/// One simulated node: a real server plus its fault flags.
struct SimNode {
    cfg: ServerConfig,
    /// `None` while the node is killed.
    server: Option<Server>,
    handle: Option<Handle>,
    /// Partitioned from the router (the node itself keeps running).
    partitioned: bool,
}

impl SimNode {
    fn start(cfg: ServerConfig) -> Result<Self, String> {
        let server = Server::start(cfg.clone()).map_err(|e| e.to_string())?;
        let handle = server.handle();
        Ok(Self {
            cfg,
            server: Some(server),
            handle: Some(handle),
            partitioned: false,
        })
    }
}

/// N in-process nodes behind the [`Transport`] interface.
pub struct SimCluster {
    nodes: Vec<SimNode>,
}

impl SimCluster {
    /// Starts `n` memory-only nodes, all from `base` (per-node state is
    /// independent; the shared seed keeps the in-node shard placement
    /// identical everywhere, matching a homogeneous deployment).
    pub fn start_memory(n: usize, base: &ServerConfig) -> Result<Self, String> {
        let dirs: Vec<Option<PathBuf>> = vec![None; n];
        Self::start_with_dirs(base, &dirs)
    }

    /// Starts one durable node per directory in `dirs` (`None` entries are
    /// memory-only). Restarting a durable node recovers from its
    /// directory, exactly like a crashed-and-restarted process.
    pub fn start_durable(base: &ServerConfig, dirs: &[PathBuf]) -> Result<Self, String> {
        let dirs: Vec<Option<PathBuf>> = dirs.iter().cloned().map(Some).collect();
        Self::start_with_dirs(base, &dirs)
    }

    fn start_with_dirs(base: &ServerConfig, dirs: &[Option<PathBuf>]) -> Result<Self, String> {
        assert!(!dirs.is_empty(), "a cluster needs at least one node");
        let mut nodes = Vec::with_capacity(dirs.len());
        for dir in dirs {
            let cfg = ServerConfig {
                data_dir: dir.clone(),
                ..base.clone()
            };
            nodes.push(SimNode::start(cfg)?);
        }
        Ok(Self { nodes })
    }

    /// The configuration node `node` runs with.
    pub fn node_config(&self, node: usize) -> &ServerConfig {
        &self.nodes[node].cfg
    }

    /// Direct access to a running node's server (snapshot control and
    /// test instrumentation); `None` while killed.
    pub fn server(&self, node: usize) -> Option<&Server> {
        self.nodes[node].server.as_ref()
    }

    /// True when `node` would answer a call right now.
    pub fn is_reachable(&self, node: usize) -> bool {
        let Some(n) = self.nodes.get(node) else {
            return false;
        };
        n.server.is_some() && !n.partitioned
    }

    /// Stops `node`: drops its server (a durable node's acked-but-unsynced
    /// tail stays in its WAL file, exactly as a killed process leaves it)
    /// and makes it unreachable until [`SimCluster::restart`].
    pub fn kill(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        n.handle = None;
        if let Some(server) = n.server.take() {
            server.shutdown();
        }
    }

    /// Restarts a killed node from its configuration — a durable node
    /// recovers from its data directory, a memory-only node comes back
    /// empty.
    pub fn restart(&mut self, node: usize) -> Result<(), String> {
        let cfg = self.nodes[node].cfg.clone();
        let fresh = SimNode::start(cfg)?;
        let partitioned = self.nodes[node].partitioned;
        self.nodes[node] = SimNode {
            partitioned,
            ..fresh
        };
        Ok(())
    }

    /// Cuts (or heals) the link between the router and `node`. The node
    /// keeps running — unlike [`SimCluster::kill`] its state is intact
    /// when the partition heals.
    pub fn partition(&mut self, node: usize, cut: bool) {
        self.nodes[node].partitioned = cut;
    }

    /// Gracefully stops every node.
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            node.handle = None;
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}

impl Transport for SimCluster {
    fn nodes(&self) -> usize {
        self.nodes.len()
    }

    fn call(&mut self, node: usize, line: &str, resp: &mut String) -> Result<(), TransportError> {
        resp.clear();
        let Some(n) = self.nodes.get(node) else {
            return Err(TransportError::Unreachable);
        };
        if n.partitioned {
            return Err(TransportError::Unreachable);
        }
        let Some(handle) = n.handle.as_ref() else {
            return Err(TransportError::Unreachable);
        };
        // The real codec on both edges: the router's rendered line is
        // parsed exactly as the TCP frontend parses it, and the response
        // travels back as the line the frontend would write.
        let reply = match wire::parse_request(line) {
            Err(msg) => wire::encode_response(&ssj_serve::Response::Error(msg)),
            Ok(wire::WireRequest::Call { req, deadline }) => {
                wire::encode_response(&handle.call_with_deadline(req, deadline))
            }
            Ok(wire::WireRequest::Shutdown) => {
                return Err(TransportError::Io("shutdown not routable".into()))
            }
        };
        resp.push_str(&reply);
        Ok(())
    }
}
