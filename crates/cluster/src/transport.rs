//! How the router reaches nodes: one trait, a TCP implementation, and (in
//! [`crate::sim`]) the deterministic in-process simulation.
//!
//! The unit of exchange is the NDJSON wire protocol's — one request line
//! in, one response line out — so every transport speaks exactly the
//! protocol a single `ssjoin serve` process speaks, and the router cannot
//! observe which one it is on. The response buffer is caller-provided and
//! reused, keeping the scatter-gather steady state allocation-free.

use std::io::{BufRead, Write};
use std::net::TcpStream;

/// Why a node call failed at the transport layer (before any response
/// line was produced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The node is down, partitioned away, or refused the connection.
    /// The router treats this as "owner unavailable" and fails reads over
    /// to a replica.
    Unreachable,
    /// The connection produced an I/O error mid-exchange.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable => write!(f, "node unreachable"),
            TransportError::Io(msg) => write!(f, "transport i/o: {msg}"),
        }
    }
}

/// One-line-in, one-line-out access to a fixed set of nodes.
pub trait Transport {
    /// Number of nodes this transport can address (node ids are
    /// `0..nodes()`).
    fn nodes(&self) -> usize;

    /// Sends `line` (without trailing newline) to `node` and fills `resp`
    /// with the response line (cleared first, no trailing newline).
    fn call(&mut self, node: usize, line: &str, resp: &mut String) -> Result<(), TransportError>;
}

/// Real-TCP transport: each call opens a connection to the node's
/// address, sends the line, and reads one response line. Connection
/// setup per call keeps the implementation trivially robust to node
/// restarts; the cluster CLI path is for manual use, not benchmarks.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    addrs: Vec<String>,
}

impl TcpTransport {
    /// Builds the transport over one address per node.
    pub fn new(addrs: Vec<String>) -> Self {
        Self { addrs }
    }

    /// The node addresses, index = node id.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }
}

impl Transport for TcpTransport {
    fn nodes(&self) -> usize {
        self.addrs.len()
    }

    fn call(&mut self, node: usize, line: &str, resp: &mut String) -> Result<(), TransportError> {
        resp.clear();
        let Some(addr) = self.addrs.get(node) else {
            return Err(TransportError::Unreachable);
        };
        let stream = TcpStream::connect(addr).map_err(|_| TransportError::Unreachable)?;
        let mut writer = &stream;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut reader = std::io::BufReader::new(&stream);
        reader
            .read_line(resp)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        if resp.is_empty() {
            return Err(TransportError::Unreachable);
        }
        Ok(())
    }
}
