//! Read replicas: snapshot-bootstrapped, WAL-tailed mirrors of one node.
//!
//! A replica's state machine is the store's own recovery pipeline run over
//! the wire instead of over a directory:
//!
//! 1. **Bootstrap** — `snap_fetch` ships one snapshot image per shard, all
//!    at one consistent watermark and byte-identical to the owner's
//!    `shard-<i>.snap` files. The replica verifies each image (same CRC +
//!    topology checks as recovery) and restores a memory-only
//!    [`ShardedIndex`] at that watermark.
//! 2. **Tail** — `tail` ships the WAL suffix from the replica's sequence
//!    number on, as CRC frames byte-identical to the WAL file's framing.
//!    The replica decodes them with the same `FrameReader` +
//!    `decode_record` pipeline recovery uses and applies each record in
//!    log order ([`ShardedIndex::apply_replicated`] refuses gaps).
//! 3. **Re-bootstrap** — if the owner compacted past the replica's resume
//!    point (`truncated` answer), the replica starts over from a fresh
//!    snapshot batch; replication never guesses across a gap.
//!
//! The router uses a replica as the query fallback when the node is
//! unreachable; crashtest additionally *promotes* replicas — persists
//! their state as a real data directory ([`Replica::persist_to`]) and
//! verifies no acknowledged write below the replica's seq was lost.

use crate::scan;
use crate::transport::{Transport, TransportError};
use ssj_serve::{wire, ServeScratch, ServerConfig, ShardedIndex};
use ssj_store::{ShardState, WalRecord};
use std::fmt::Write as _;

/// Errors surfaced by replica bootstrap and catch-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The owner could not be reached.
    Unreachable,
    /// The owner answered, but the payload failed verification or the
    /// protocol shape was wrong.
    Protocol(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Unreachable => write!(f, "owner unreachable"),
            ReplicaError::Protocol(msg) => write!(f, "replication protocol: {msg}"),
        }
    }
}

impl From<TransportError> for ReplicaError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Unreachable => ReplicaError::Unreachable,
            TransportError::Io(msg) => ReplicaError::Protocol(msg),
        }
    }
}

fn protocol(msg: impl Into<String>) -> ReplicaError {
    ReplicaError::Protocol(msg.into())
}

/// A read replica of one node, mirrored in memory.
pub struct Replica {
    node: usize,
    cfg: ServerConfig,
    index: ShardedIndex,
    scratch: ServeScratch,
    line: String,
    resp: String,
}

impl Replica {
    /// Bootstraps a replica of `node` from a shipped snapshot batch.
    /// `cfg` must match the node's own configuration (shards, seed, γ) —
    /// the image verification rejects a topology mismatch.
    pub fn bootstrap<T: Transport>(
        transport: &mut T,
        node: usize,
        cfg: &ServerConfig,
    ) -> Result<Self, ReplicaError> {
        let mut replica = Self {
            node,
            cfg: cfg.clone(),
            // Placeholder until the first bootstrap below replaces it.
            index: ShardedIndex::new(cfg).map_err(|e| protocol(e.to_string()))?,
            scratch: ServeScratch::default(),
            line: String::new(),
            resp: String::new(),
        };
        replica.rebootstrap(transport)?;
        Ok(replica)
    }

    /// The node this replica mirrors.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The replica's sequence number: it has applied exactly the owner's
    /// writes numbered below this.
    pub fn seq(&self) -> u64 {
        self.index.seq()
    }

    /// The mirrored index (promotion and test instrumentation).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Fetches a fresh consistent snapshot batch and restores to it.
    fn rebootstrap<T: Transport>(&mut self, transport: &mut T) -> Result<(), ReplicaError> {
        self.line.clear();
        self.line.push_str("{\"op\":\"snap_fetch\"}");
        transport.call(self.node, &self.line, &mut self.resp)?;
        let value = ssj_io::json::parse(&self.resp).map_err(protocol)?;
        let obj = value.as_object().map_err(protocol)?;
        let seq = obj
            .get("seq")
            .ok_or_else(|| protocol("snap_fetch answer lacks \"seq\""))?
            .as_u64()
            .map_err(protocol)?;
        let images = obj
            .get("shards")
            .ok_or_else(|| protocol("snap_fetch answer lacks \"shards\""))?
            .as_array()
            .map_err(protocol)?;
        let n = images.len();
        let mut states: Vec<ShardState> = Vec::with_capacity(n);
        for (i, image) in images.iter().enumerate() {
            let hex = image.as_str().map_err(protocol)?;
            let bytes = wire::parse_hex(hex).map_err(protocol)?;
            let (image_seq, state) = ssj_store::decode_shard_snapshot(&bytes, i, n)
                .map_err(|e| protocol(e.to_string()))?;
            if image_seq != seq {
                return Err(protocol(format!(
                    "shipped image for shard {i} is at seq {image_seq}, batch claims {seq}"
                )));
            }
            states.push(state);
        }
        self.index = ShardedIndex::restore_from_states(&self.cfg, &states, seq)
            .map_err(|e| protocol(e.to_string()))?;
        Ok(())
    }

    /// Catches up to the owner: tails the WAL from the replica's sequence
    /// number, applying shipped records in log order; re-bootstraps from a
    /// snapshot batch when the owner already compacted past the resume
    /// point. Returns the replica's sequence number afterwards.
    pub fn catch_up<T: Transport>(&mut self, transport: &mut T) -> Result<u64, ReplicaError> {
        self.line.clear();
        let _ = write!(self.line, "{{\"op\":\"tail\",\"from_seq\":{}}}", self.seq());
        transport.call(self.node, &self.line, &mut self.resp)?;
        if !scan::is_ok(&self.resp) {
            return Err(protocol(format!("tail refused: {}", self.resp)));
        }
        let frames_hex = {
            let value = ssj_io::json::parse(&self.resp).map_err(protocol)?;
            let obj = value.as_object().map_err(protocol)?;
            match obj.get("frames") {
                Some(v) => v.as_str().map_err(protocol)?.to_string(),
                // Truncated: the resume point was compacted into snapshots.
                None => {
                    self.rebootstrap(transport)?;
                    return Ok(self.seq());
                }
            }
        };
        let bytes = wire::parse_hex(&frames_hex).map_err(protocol)?;
        self.apply_frames(&bytes)?;
        Ok(self.seq())
    }

    /// Decodes and applies a batch of CRC-framed WAL records in order.
    fn apply_frames(&mut self, bytes: &[u8]) -> Result<(), ReplicaError> {
        let mut reader = ssj_io::frame::FrameReader::new(bytes);
        loop {
            match reader.next_frame().map_err(|e| protocol(e.to_string()))? {
                ssj_io::frame::Frame::Payload(payload) => {
                    let record: WalRecord =
                        ssj_store::decode_record(&payload).map_err(|e| protocol(e.to_string()))?;
                    self.index
                        .apply_replicated(&record)
                        .map_err(|e| protocol(e.to_string()))?;
                }
                ssj_io::frame::Frame::CleanEof => return Ok(()),
                other => {
                    return Err(protocol(format!(
                        "shipped WAL batch has a non-clean tail: {other:?}"
                    )))
                }
            }
        }
    }

    /// Serves a query from the replica's snapshot: fills `out` with the
    /// matching node-local global ids (ascending) and returns
    /// `(seen_seq, probed)` — the same contract as the live node's query,
    /// at the replica's (possibly older) watermark. Allocation-free once
    /// the internal scratch has warmed.
    pub fn query_local(&mut self, elems: &[u32], out: &mut Vec<u64>) -> (u64, u64) {
        self.index.query_scratch(elems, &mut self.scratch, out)
    }

    /// Promotion: persists the replica's current state into `dir` as a
    /// real data directory — one verified snapshot image per shard at the
    /// replica's watermark, each written durably with the store's own
    /// atomic tmp + fsync + rename + dir-fsync discipline. Stale `*.tmp`
    /// litter from an earlier promotion attempt that crashed mid-ship is
    /// swept first, the same way store recovery sweeps snapshot litter —
    /// a retried promotion always starts from a clean staging area. A
    /// `Store::open` on `dir` with the node's config then recovers
    /// exactly this state and can take writes as the new owner.
    pub fn persist_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        ssj_io::fs::sweep_tmp_files(dir)?;
        let (states, seq) = self.index.dump();
        let n = states.len();
        for (i, state) in states.iter().enumerate() {
            let bytes = ssj_store::encode_shard_snapshot(i, n, seq, state)?;
            ssj_store::persist_shipped_snapshot(dir, i, n, &bytes)?;
        }
        Ok(())
    }
}
