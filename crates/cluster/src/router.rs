//! The scatter-gather router: one coordinator over N wire-protocol nodes.
//!
//! **Writes** route to the ring owner — a pure function of the set's
//! content — and return the owner's ack unchanged in meaning: `seq` is the
//! owner's write number, `durable_seq` the owner's durability watermark.
//! **Queries** fan out to every node (content-hash placement scatters
//! *similar* sets across nodes, exactly like the in-process sharding they
//! mirror), merge the per-node id lists into cluster ids, and fold the
//! per-node `seen_seq` values into one [`ClusterSeq`] vector — each
//! component carries the single-node snapshot guarantee for its node.
//!
//! **Cluster ids** reuse the id-encoding trick one level up: a node-local
//! global id `g` on node `n` in an `N`-node cluster becomes
//! `g * N + n`, so the owning node is recoverable from any cluster id
//! (`id % N`) and ids stay stable across node-internal rebuilds.
//!
//! [`Router::route_query`] is the hot entry point (a hotlint HOT_ROOT):
//! after warm-up it performs no heap allocation — the request line,
//! response buffer, canonical set, and per-node id buffer all live in
//! [`RouterScratch`] and are reused across calls; response parsing is the
//! byte-level [`crate::scan`] module, not a JSON tree.

use crate::replica::Replica;
use crate::ring::HashRing;
use crate::scan;
use crate::transport::{Transport, TransportError};
use ssj_core::index::Placement;
use ssj_core::set::ElementId;
use std::fmt::Write as _;

/// Vector-clock-style snapshot watermark: one `seen_seq` per node.
///
/// Component `n` means the query observed exactly the writes numbered
/// `< seen[n]` on node `n` — the single-node snapshot-consistency
/// contract, held per node. No cross-node ordering is implied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSeq {
    seen: Vec<u64>,
}

impl ClusterSeq {
    /// An all-zero vector for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            seen: vec![0; nodes],
        }
    }

    /// The per-node components, index = node id.
    pub fn components(&self) -> &[u64] {
        &self.seen
    }

    /// Sum of all components: with quiesced writers this equals the total
    /// number of writes the query observed across the cluster.
    pub fn total(&self) -> u64 {
        self.seen.iter().sum()
    }

    fn set(&mut self, node: usize, seq: u64) {
        if let Some(slot) = self.seen.get_mut(node) {
            *slot = seq;
        }
    }
}

/// Why a routed request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// The node was unreachable and no replica could stand in.
    NodeDown(usize),
    /// The node answered with a wire-level failure.
    Rejected {
        /// Which node refused.
        node: usize,
        /// The wire discriminator (`overloaded`, `timeout`,
        /// `shutting_down`, `bad_request`).
        kind: Rejection,
    },
    /// The response line did not carry the fields the op requires.
    Protocol(String),
}

/// Wire-level failure discriminators, mirrored from the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// `{"error":"overloaded"}` — the node's queue was full.
    Overloaded,
    /// `{"error":"timeout"}` — the request expired in the node's queue.
    Timeout,
    /// `{"error":"shutting_down"}` — the node is draining.
    ShuttingDown,
    /// `{"error":"bad_request"}` or an unrecognized discriminator.
    Bad,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NodeDown(n) => write!(f, "node {n} down (no replica available)"),
            RouterError::Rejected { node, kind } => write!(f, "node {node} rejected: {kind:?}"),
            RouterError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

/// Ack for a routed write, in the owner's own terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Cluster id of the written set (`node_local_global_id * N + node`).
    pub id: u64,
    /// The owning node.
    pub node: usize,
    /// The owner's write-sequence number for this write.
    pub node_seq: u64,
    /// The owner's durability watermark, when it is durable.
    pub durable_seq: Option<u64>,
}

/// Ack for a routed remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveAck {
    /// Whether the id named a live set on its node.
    pub found: bool,
    /// The owning node.
    pub node: usize,
    /// The owner's write-sequence number for this write.
    pub node_seq: u64,
    /// The owner's durability watermark, when it is durable.
    pub durable_seq: Option<u64>,
}

/// Ack for a scatter-gather query; the ids land in the caller's buffer
/// and the watermark in the caller's [`ClusterSeq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryAck {
    /// Candidates probed, summed across every node that answered.
    pub probed: u64,
    /// Nodes answered by a replica instead of the live owner (their
    /// `ClusterSeq` components are the replica's possibly older
    /// watermark).
    pub replica_answers: u32,
}

/// Reusable buffers for the router's steady-state paths (DESIGN.md §5g).
#[derive(Debug, Default)]
pub struct RouterScratch {
    /// Rendered request line, reused across calls.
    line: String,
    /// Response line buffer, reused across calls.
    resp: String,
    /// Canonicalized (sorted, deduplicated) request set.
    set: Vec<ElementId>,
    /// One node's matching ids before cluster-id encoding.
    node_ids: Vec<u64>,
}

/// The coordinator: ring placement + transport + optional read replicas.
pub struct Router<T: Transport> {
    transport: T,
    ring: HashRing,
    epoch: u64,
    replicas: Vec<Option<Replica>>,
}

impl<T: Transport> Router<T> {
    /// Builds a router over `transport` using `ring` for placement.
    /// `epoch` is the topology version this placement came from
    /// ([`crate::ClusterMeta::epoch`]).
    pub fn new(transport: T, ring: HashRing, epoch: u64) -> Self {
        let nodes = transport.nodes();
        let mut replicas = Vec::with_capacity(nodes);
        replicas.resize_with(nodes, || None);
        Self {
            transport,
            ring,
            epoch,
            replicas,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.transport.nodes()
    }

    /// The topology epoch this router's placement came from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ring placement.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The underlying transport (read-only instrumentation).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The underlying transport (fault injection in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Attaches a read replica as the query fallback for the node it
    /// mirrors; replaces any previous replica of that node.
    pub fn attach_replica(&mut self, replica: Replica) {
        let node = replica.node();
        if let Some(slot) = self.replicas.get_mut(node) {
            *slot = Some(replica);
        }
    }

    /// Detaches and returns node `node`'s replica (promotion).
    pub fn take_replica(&mut self, node: usize) -> Option<Replica> {
        self.replicas.get_mut(node).and_then(Option::take)
    }

    /// Tails every attached replica from its current watermark (no-op for
    /// replicas whose owner is unreachable). Returns how many advanced.
    pub fn catch_up_replicas(&mut self) -> usize {
        let mut advanced = 0;
        for replica in self.replicas.iter_mut().flatten() {
            let before = replica.seq();
            if let Ok(after) = replica.catch_up(&mut self.transport) {
                if after > before {
                    advanced += 1;
                }
            }
        }
        advanced
    }

    /// Encodes a node-local global id as a cluster id.
    pub fn cluster_id(&self, node_local: u64, node: usize) -> u64 {
        node_local * self.nodes() as u64 + node as u64
    }

    /// Splits a cluster id into `(node, node-local global id)`.
    pub fn decode_cluster_id(&self, id: u64) -> (usize, u64) {
        let n = self.nodes() as u64;
        ((id % n) as usize, id / n)
    }

    /// The ring owner of `elems` (canonicalized into `scratch.set`).
    fn owner_of(&self, elems: &[ElementId], scratch: &mut RouterScratch) -> usize {
        scratch.set.clear();
        scratch.set.extend_from_slice(elems);
        scratch.set.sort_unstable();
        scratch.set.dedup();
        self.ring.bucket_of(&scratch.set)
    }

    /// Renders `{"op":<op>,"set":[...]}` from the canonical set.
    fn render_set_line(op: &str, scratch: &mut RouterScratch) {
        scratch.line.clear();
        scratch.line.push_str("{\"op\":\"");
        scratch.line.push_str(op);
        scratch.line.push_str("\",\"set\":[");
        for (i, e) in scratch.set.iter().enumerate() {
            if i > 0 {
                scratch.line.push(',');
            }
            let _ = write!(scratch.line, "{e}");
        }
        scratch.line.push_str("]}");
    }

    fn classify(node: usize, resp: &str) -> RouterError {
        match scan::error_kind(resp) {
            Some("overloaded") => RouterError::Rejected {
                node,
                kind: Rejection::Overloaded,
            },
            Some("timeout") => RouterError::Rejected {
                node,
                kind: Rejection::Timeout,
            },
            Some("shutting_down") => RouterError::Rejected {
                node,
                kind: Rejection::ShuttingDown,
            },
            _ => RouterError::Rejected {
                node,
                kind: Rejection::Bad,
            },
        }
    }

    /// Routes an insert to its ring owner. Returns the owner's ack with
    /// the id lifted to a cluster id.
    pub fn route_insert(
        &mut self,
        elems: &[ElementId],
        scratch: &mut RouterScratch,
    ) -> Result<WriteAck, RouterError> {
        let owner = self.owner_of(elems, scratch);
        Self::render_set_line("insert", scratch);
        match self.transport.call(owner, &scratch.line, &mut scratch.resp) {
            Ok(()) => {}
            Err(TransportError::Unreachable) => return Err(RouterError::NodeDown(owner)),
            Err(TransportError::Io(msg)) => return Err(RouterError::Protocol(msg)),
        }
        if !scan::is_ok(&scratch.resp) {
            return Err(Self::classify(owner, &scratch.resp));
        }
        let (Some(id), Some(seq)) = (
            scan::field_u64(&scratch.resp, "id"),
            scan::field_u64(&scratch.resp, "seq"),
        ) else {
            return Err(RouterError::Protocol(format!(
                "insert ack lacks id/seq: {}",
                scratch.resp
            )));
        };
        Ok(WriteAck {
            id: self.cluster_id(id, owner),
            node: owner,
            node_seq: seq,
            durable_seq: scan::field_u64(&scratch.resp, "durable_seq"),
        })
    }

    /// Routes a remove to the node encoded in the cluster id.
    pub fn route_remove(
        &mut self,
        id: u64,
        scratch: &mut RouterScratch,
    ) -> Result<RemoveAck, RouterError> {
        let (node, local) = self.decode_cluster_id(id);
        scratch.line.clear();
        let _ = write!(scratch.line, "{{\"op\":\"remove\",\"id\":{local}}}");
        match self.transport.call(node, &scratch.line, &mut scratch.resp) {
            Ok(()) => {}
            Err(TransportError::Unreachable) => return Err(RouterError::NodeDown(node)),
            Err(TransportError::Io(msg)) => return Err(RouterError::Protocol(msg)),
        }
        if !scan::is_ok(&scratch.resp) {
            return Err(Self::classify(node, &scratch.resp));
        }
        let Some(seq) = scan::field_u64(&scratch.resp, "seq") else {
            return Err(RouterError::Protocol(format!(
                "remove ack lacks seq: {}",
                scratch.resp
            )));
        };
        Ok(RemoveAck {
            found: scratch.resp.contains("\"found\":true"),
            node,
            node_seq: seq,
            durable_seq: scan::field_u64(&scratch.resp, "durable_seq"),
        })
    }

    /// The scatter-gather read path: fans the query to every node, merges
    /// the per-node answers into `out` as ascending cluster ids, and
    /// records each node's `seen_seq` in `seen`. A node that is
    /// unreachable is answered by its attached replica (at the replica's
    /// watermark); with no replica the whole query fails — a partial
    /// answer would silently break the snapshot contract.
    ///
    /// Allocation-free once `scratch`, `out`, and `seen` have warmed.
    pub fn route_query(
        &mut self,
        elems: &[ElementId],
        scratch: &mut RouterScratch,
        out: &mut Vec<u64>,
        seen: &mut ClusterSeq,
    ) -> Result<QueryAck, RouterError> {
        let nodes = self.transport.nodes();
        scratch.set.clear();
        scratch.set.extend_from_slice(elems);
        scratch.set.sort_unstable();
        scratch.set.dedup();
        Self::render_set_line("query", scratch);
        out.clear();
        let mut probed = 0u64;
        let mut replica_answers = 0u32;
        for node in 0..nodes {
            match self.transport.call(node, &scratch.line, &mut scratch.resp) {
                Ok(()) => {
                    if !scan::is_ok(&scratch.resp) {
                        return Err(Self::classify(node, &scratch.resp));
                    }
                    let n = nodes as u64;
                    let got_ids = scan::for_each_array_u64(&scratch.resp, "ids", |id| {
                        out.push(id * n + node as u64);
                    });
                    let seen_seq = scan::field_u64(&scratch.resp, "seen_seq");
                    let node_probed = scan::field_u64(&scratch.resp, "probed");
                    let (true, Some(seen_seq), Some(node_probed)) =
                        (got_ids, seen_seq, node_probed)
                    else {
                        // hotlint: allow(hot-alloc-loop): terminal protocol-error path — allocates once while abandoning the query, never on the per-node success path.
                        return Err(RouterError::Protocol(format!(
                            "query answer lacks ids/seen_seq/probed: {}",
                            scratch.resp
                        )));
                    };
                    seen.set(node, seen_seq);
                    probed += node_probed;
                }
                Err(TransportError::Unreachable) => {
                    // Owner down: fail the read over to its replica.
                    let Some(replica) = self.replicas.get_mut(node).and_then(Option::as_mut) else {
                        return Err(RouterError::NodeDown(node));
                    };
                    let (seen_seq, node_probed) =
                        replica.query_local(&scratch.set, &mut scratch.node_ids);
                    let n = nodes as u64;
                    for &id in &scratch.node_ids {
                        out.push(id * n + node as u64);
                    }
                    seen.set(node, seen_seq);
                    probed += node_probed;
                    replica_answers += 1;
                }
                Err(TransportError::Io(msg)) => return Err(RouterError::Protocol(msg)),
            }
        }
        out.sort_unstable();
        Ok(QueryAck {
            probed,
            replica_answers,
        })
    }
}
