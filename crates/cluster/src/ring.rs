//! `HashRing` — content-hash placement lifted to the node level.
//!
//! Each node contributes `vnodes` deterministic points on a `u64` ring; a
//! set is owned by the first point at or clockwise-after its content hash
//! (wrapping past the top). The hash is [`ssj_core::index::content_hash_of`]
//! — the *same* value the in-node shard placement reduces — so a set's
//! routing key is computed once per layer from one definition, and the
//! node that owns a set also generates its signatures and probes its
//! candidates locally (signature-local partitioning).
//!
//! The point set is a pure function of `(seed, node count, vnodes)`, so
//! every router that agrees on the persisted [`crate::ClusterMeta`] agrees
//! on placement without any coordination.

use ssj_core::index::{content_hash_of, Placement};
use ssj_core::set::ElementId;

/// One ring point: position on the `u64` circle and the owning node.
pub type RingPoint = (u64, u32);

/// SplitMix64 finalizer: decorrelates the (node, vnode) lattice into ring
/// positions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Consistent-hash placement over cluster nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Ring points, ascending by position (ties broken by node id).
    points: Vec<RingPoint>,
    nodes: u32,
    seed: u64,
}

impl HashRing {
    /// Default virtual points per node: enough to keep the load imbalance
    /// across a handful of nodes modest while the point vector stays tiny.
    pub const DEFAULT_VNODES: u32 = 64;

    /// Builds the ring for `nodes` nodes with `vnodes` points each, both
    /// clamped to at least one. The point set depends only on the
    /// arguments.
    pub fn new(nodes: u32, vnodes: u32, seed: u64) -> Self {
        let nodes = nodes.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity((nodes as usize) * (vnodes as usize));
        for node in 0..nodes {
            for vnode in 0..vnodes {
                let pos = mix64(
                    seed ^ (u64::from(node)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                        ^ (u64::from(vnode)).wrapping_mul(0x1656_67b1_9e37_79f9),
                );
                points.push((pos, node));
            }
        }
        points.sort_unstable();
        Self {
            points,
            nodes,
            seed,
        }
    }

    /// Reconstructs a ring from persisted points (see [`crate::ClusterMeta`]).
    /// `points` must be non-empty and ascending; every node id must be
    /// below `nodes`.
    pub fn from_points(points: Vec<RingPoint>, nodes: u32, seed: u64) -> Result<Self, String> {
        if points.is_empty() {
            return Err("ring needs at least one point".into());
        }
        if !points.windows(2).all(|w| w[0] <= w[1]) {
            return Err("ring points must be ascending".into());
        }
        if let Some(&(_, node)) = points.iter().find(|&&(_, node)| node >= nodes.max(1)) {
            return Err(format!("ring point names node {node} of {nodes}"));
        }
        Ok(Self {
            points,
            nodes: nodes.max(1),
            seed,
        })
    }

    /// The ring's hash seed (shared with the persisted meta).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ring points, ascending (for persistence).
    pub fn points(&self) -> &[RingPoint] {
        &self.points
    }

    /// The node owning raw ring position `hash`: first point at or after
    /// it, wrapping to the first point past the top of the circle.
    pub fn node_at(&self, hash: u64) -> u32 {
        let i = self.points.partition_point(|&(pos, _)| pos < hash);
        match self.points.get(i) {
            Some(&(_, node)) => node,
            None => self.points[0].1,
        }
    }
}

impl Placement for HashRing {
    fn buckets(&self) -> usize {
        self.nodes as usize
    }

    fn bucket_of(&self, set: &[ElementId]) -> usize {
        self.node_at(content_hash_of(set, self.seed)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let ring = HashRing::new(5, 16, 42);
        assert_eq!(ring.buckets(), 5);
        for i in 0..500u32 {
            let set: Vec<u32> = (i..i + 4).collect();
            let a = ring.bucket_of(&set);
            assert!(a < 5);
            assert_eq!(a, HashRing::new(5, 16, 42).bucket_of(&set));
        }
    }

    #[test]
    fn ring_is_roughly_balanced() {
        let ring = HashRing::new(4, HashRing::DEFAULT_VNODES, 7);
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[ring.bucket_of(&[i * 3, i * 3 + 1])] += 1;
        }
        // 4000 keys over 4 nodes with 64 vnodes each: every node should
        // carry a material share. The bound is loose on purpose — ring
        // balance is statistical, and the point set is fixed by the seed.
        assert!(counts.iter().all(|&c| c > 400), "{counts:?}");
    }

    #[test]
    fn points_round_trip_through_from_points() {
        let ring = HashRing::new(3, 8, 99);
        let rebuilt = HashRing::from_points(ring.points().to_vec(), 3, 99).unwrap();
        assert_eq!(ring, rebuilt);
        assert!(HashRing::from_points(Vec::new(), 3, 99).is_err());
        assert!(HashRing::from_points(vec![(5, 9)], 3, 99).is_err());
        assert!(HashRing::from_points(vec![(5, 0), (1, 1)], 3, 99).is_err());
    }

    #[test]
    fn wraparound_owner_is_the_first_point() {
        let ring = HashRing::from_points(vec![(100, 2), (200, 0)], 3, 0).unwrap();
        assert_eq!(ring.node_at(50), 2);
        assert_eq!(ring.node_at(100), 2);
        assert_eq!(ring.node_at(150), 0);
        assert_eq!(ring.node_at(201), 2, "past the top wraps to first point");
    }
}
