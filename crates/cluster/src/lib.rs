//! # ssj-cluster — multi-node partitioned serving over `ssj-serve`
//!
//! The single-node engine already has everything a cluster needs as
//! primitives: content-hash routing behind the [`ssj_core::index::Placement`]
//! trait, a snapshot-consistent sequence contract (`seq` / `seen_seq`), a
//! WAL + snapshot store, and an NDJSON wire protocol. This crate lifts the
//! partitioning one level — from shards inside a process to **nodes** —
//! without changing any of those contracts:
//!
//! * [`ring`] — a `HashRing` placement over nodes: the same content hash
//!   that picks a shard inside a node picks the node itself, so signature
//!   generation and candidate probing stay node-local.
//! * [`meta`] — the versioned cluster topology (`epoch`, node count, ring
//!   points), persisted as one CRC-framed file via `ssj_io::{frame, crc}`.
//! * [`router`] — the scatter-gather coordinator: writes route to the ring
//!   owner and ack with `durable_seq` exactly as a single node would;
//!   queries fan out to every node and merge per-node answers, folding the
//!   per-node `seen_seq` values into one vector-clock-style [`ClusterSeq`].
//!   The steady-state fan-out path ([`Router::route_query`]) is
//!   allocation-free once warmed (a hotlint HOT_ROOT with a release-mode
//!   counting-allocator witness).
//! * [`replica`] — read replicas: bootstrap from the owner's shipped
//!   snapshot images (`snap_fetch`, byte-identical to `shard-<i>.snap`),
//!   then tail the WAL over the `tail` wire op (CRC frames reused
//!   verbatim). The router fails a query over to a replica when the owner
//!   is unreachable.
//! * [`sim`] — the first-class test harness: an in-process simulated
//!   network of N real `ssj_serve::Server`s driven through the real wire
//!   encode/decode, with deterministic, injectable node-kills and
//!   partitions, so difftest and crashtest drive a cluster exactly like a
//!   single node. `ssjoin cluster --nodes N` wires the same router to real
//!   TCP instead.
//!
//! ## The `ClusterSeq` contract (DESIGN.md §5j)
//!
//! Writes are sequenced per node, never globally: node `n` acks write
//! `seq_n` under its own snapshot-consistency contract. A scatter-gather
//! query returns one `seen_seq` component per node, and the vector means
//! exactly what the scalar meant on one node: the query observed, for
//! every node `n`, precisely the writes numbered `< seen[n]` on `n`.
//! There is no cross-node ordering claim — none is needed, because a set's
//! owner is a pure function of its content, so the pairs a query returns
//! are unaffected by how writes interleave across nodes.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod meta;
pub mod replica;
pub mod ring;
pub mod router;
pub mod scan;
pub mod sim;
pub mod transport;

pub use meta::ClusterMeta;
pub use replica::Replica;
pub use ring::HashRing;
pub use router::{
    ClusterSeq, QueryAck, Rejection, RemoveAck, Router, RouterError, RouterScratch, WriteAck,
};
pub use sim::SimCluster;
pub use transport::{TcpTransport, Transport, TransportError};
