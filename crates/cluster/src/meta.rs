//! The versioned cluster topology, persisted as one CRC-framed record.
//!
//! `ClusterMeta` is to a cluster what the store's `meta` file is to a data
//! directory: it pins everything placement depends on — topology epoch,
//! node count, ring seed, and the explicit node → ring-range map (the
//! sorted points) — so two routers that load the same file make identical
//! routing decisions, and a stale router can detect it lost a topology
//! race by comparing epochs.
//!
//! On disk the record is `[len varint][payload][crc32 LE]` — exactly one
//! `ssj_io::frame` frame, so torn and corrupt files are *detected* by the
//! same machinery that guards the WAL, never half-decoded. The payload is
//! `[SSJT v1][varint epoch][varint seed][varint nodes][varint vnodes]
//! [varint point_count][points: pos delta-coded, node]`.

use crate::ring::{HashRing, RingPoint};
use ssj_io::frame::{write_frame, Frame, FrameReader};
use ssj_io::varint::{read_varint, write_varint};
use std::fs;
use std::io;
use std::path::Path;

/// Topology file magic + format version.
const META_MAGIC: [u8; 5] = *b"SSJT\x01";

/// File name of the persisted topology inside a cluster directory.
pub const META_FILE: &str = "cluster-meta";

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The versioned cluster topology: epoch plus the full placement input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMeta {
    /// Monotonic topology version: bumped on every membership change, so
    /// routers and replicas can detect stale placement.
    pub epoch: u64,
    /// Ring hash seed (also the master seed nodes derive theirs from).
    pub seed: u64,
    /// Number of nodes in the cluster.
    pub nodes: u32,
    /// Virtual points per node on the ring.
    pub vnodes: u32,
    /// The node → ring-range map: sorted ring points, each owning the arc
    /// that ends at its position.
    pub points: Vec<RingPoint>,
}

impl ClusterMeta {
    /// Builds the epoch-0 topology for `nodes` nodes: derives the ring
    /// points from `(seed, nodes, vnodes)`.
    pub fn bootstrap(nodes: u32, vnodes: u32, seed: u64) -> Self {
        let ring = HashRing::new(nodes, vnodes, seed);
        Self {
            epoch: 0,
            seed,
            nodes: nodes.max(1),
            vnodes: vnodes.max(1),
            points: ring.points().to_vec(),
        }
    }

    /// The placement this topology describes.
    pub fn ring(&self) -> Result<HashRing, String> {
        HashRing::from_points(self.points.clone(), self.nodes, self.seed)
    }

    /// Encodes the topology as one framed, checksummed record.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut payload = Vec::with_capacity(32 + self.points.len() * 4);
        payload.extend_from_slice(&META_MAGIC);
        write_varint(&mut payload, self.epoch)?;
        write_varint(&mut payload, self.seed)?;
        write_varint(&mut payload, u64::from(self.nodes))?;
        write_varint(&mut payload, u64::from(self.vnodes))?;
        write_varint(&mut payload, self.points.len() as u64)?;
        let mut prev = 0u64;
        for &(pos, node) in &self.points {
            if pos < prev {
                return Err(invalid("ring points must be ascending"));
            }
            write_varint(&mut payload, pos - prev)?;
            write_varint(&mut payload, u64::from(node))?;
            prev = pos;
        }
        let mut out = Vec::with_capacity(payload.len() + 16);
        write_frame(&mut out, &payload)?;
        Ok(out)
    }

    /// Decodes a record written by [`ClusterMeta::encode`]. Torn, corrupt,
    /// or trailing-garbage files are refused.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let mut reader = FrameReader::new(bytes);
        let payload = match reader.next_frame()? {
            Frame::Payload(p) => p,
            Frame::CleanEof => return Err(invalid("empty cluster meta")),
            Frame::Torn { .. } => return Err(invalid("torn cluster meta")),
            Frame::Corrupt { .. } => return Err(invalid("corrupt cluster meta")),
        };
        if reader.valid_prefix() != bytes.len() as u64 {
            match reader.next_frame()? {
                Frame::CleanEof => {}
                _ => return Err(invalid("trailing bytes after cluster meta")),
            }
            if reader.valid_prefix() != bytes.len() as u64 {
                return Err(invalid("trailing bytes after cluster meta"));
            }
        }
        if payload.len() < META_MAGIC.len() || payload[..META_MAGIC.len()] != META_MAGIC {
            return Err(invalid("bad cluster meta magic/version"));
        }
        let mut input = &payload[META_MAGIC.len()..];
        let epoch = read_varint(&mut input)?;
        let seed = read_varint(&mut input)?;
        let nodes = read_varint(&mut input)?;
        let vnodes = read_varint(&mut input)?;
        if nodes == 0 || nodes > u64::from(u32::MAX) || vnodes == 0 || vnodes > u64::from(u32::MAX)
        {
            return Err(invalid("cluster meta node/vnode count out of range"));
        }
        let count = read_varint(&mut input)?;
        let mut points = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut prev = 0u64;
        for _ in 0..count {
            let delta = read_varint(&mut input)?;
            let pos = prev
                .checked_add(delta)
                .ok_or_else(|| invalid("ring point position overflows the u64 circle"))?;
            let node = read_varint(&mut input)?;
            if node >= nodes {
                return Err(invalid(format!("ring point names node {node} of {nodes}")));
            }
            points.push((pos, node as u32));
            prev = pos;
        }
        if !input.is_empty() {
            return Err(invalid("trailing bytes inside cluster meta payload"));
        }
        Ok(Self {
            epoch,
            seed,
            nodes: nodes as u32,
            vnodes: vnodes as u32,
            points,
        })
    }

    /// Persists the topology atomically and durably (tmp write + fsync +
    /// rename + dir fsync, the same `ssj_io::fs::atomic_write_durable`
    /// protocol the store's snapshots use) as `cluster-meta` inside `dir`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let bytes = self.encode()?;
        ssj_io::fs::atomic_write_durable(&dir.join(META_FILE), &bytes)
    }

    /// Loads the topology persisted by [`ClusterMeta::save`]. Sweeps
    /// stale `cluster-meta.tmp` litter from a crash mid-save first, the
    /// same recovery discipline the store applies to snapshot litter.
    pub fn load(dir: &Path) -> io::Result<Self> {
        ssj_io::fs::sweep_tmp_files(dir)?;
        Self::decode(&fs::read(dir.join(META_FILE))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let meta = ClusterMeta::bootstrap(3, 8, 0xC10C);
        let bytes = meta.encode().unwrap();
        assert_eq!(ClusterMeta::decode(&bytes).unwrap(), meta);
        let ring = meta.ring().unwrap();
        assert_eq!(ring, HashRing::new(3, 8, 0xC10C));
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let meta = ClusterMeta::bootstrap(2, 4, 7);
        let clean = meta.encode().unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x20;
            assert!(ClusterMeta::decode(&bad).is_err(), "flip at {i} undetected");
        }
        for cut in 0..clean.len() {
            assert!(ClusterMeta::decode(&clean[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = clean.clone();
        trailing.push(0);
        assert!(ClusterMeta::decode(&trailing).is_err());
    }

    #[test]
    fn load_sweeps_stale_tmp_litter() {
        let dir = std::env::temp_dir().join(format!("ssj-cluster-meta-sw-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let meta = ClusterMeta::bootstrap(3, 8, 99);
        meta.save(&dir).unwrap();
        // A crash mid-save leaves a torn staging file; recovery must not
        // trip over it and must remove it.
        fs::write(dir.join("cluster-meta.tmp"), b"torn half-save").unwrap();
        assert_eq!(ClusterMeta::load(&dir).unwrap(), meta);
        assert!(!dir.join("cluster-meta.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ssj-cluster-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let meta = ClusterMeta::bootstrap(5, 16, 1234);
        meta.save(&dir).unwrap();
        assert_eq!(ClusterMeta::load(&dir).unwrap(), meta);
        assert!(!dir.join("cluster-meta.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
