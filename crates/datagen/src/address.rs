//! Synthetic US-style address data — the stand-in for the paper's
//! proprietary 1M-record address set (see DESIGN.md, "Data substitutions").
//!
//! Each record is "a concatenation of an organization name and address
//! (street, city, zip, state)" averaging ~11 whitespace tokens, with a
//! configurable fraction of near-duplicate records produced by the typo
//! model — the structure that drives the algorithms' behaviour: skewed
//! token frequencies (state/city names repeat; street numbers and org names
//! are rare) and clusters of highly similar records.

use crate::typo::{apply_typos, drop_token};
use rand::prelude::*;

const ORG_HEADS: &[&str] = &[
    "acme",
    "global",
    "pacific",
    "northern",
    "united",
    "premier",
    "summit",
    "cascade",
    "evergreen",
    "pioneer",
    "liberty",
    "capital",
    "coastal",
    "sterling",
    "golden",
    "crescent",
    "atlas",
    "beacon",
    "harbor",
    "vertex",
];

const ORG_CORES: &[&str] = &[
    "software",
    "logistics",
    "consulting",
    "manufacturing",
    "foods",
    "motors",
    "energy",
    "medical",
    "dental",
    "roofing",
    "plumbing",
    "electric",
    "marine",
    "textiles",
    "printing",
    "brewing",
    "optics",
    "robotics",
    "analytics",
    "holdings",
];

const ORG_TAILS: &[&str] = &[
    "inc", "llc", "corp", "co", "group", "ltd", "partners", "services",
];

const STREET_NAMES: &[&str] = &[
    "main",
    "oak",
    "pine",
    "maple",
    "cedar",
    "elm",
    "washington",
    "lake",
    "hill",
    "park",
    "river",
    "spring",
    "ridge",
    "sunset",
    "highland",
    "forest",
    "meadow",
    "walnut",
    "cherry",
    "spruce",
    "madison",
    "jefferson",
    "lincoln",
    "jackson",
    "franklin",
    "union",
    "church",
    "market",
    "broad",
    "center",
    "mill",
    "bridge",
    "water",
    "prospect",
    "pleasant",
    "chestnut",
    "willow",
    "birch",
    "dogwood",
    "magnolia",
];

const STREET_TYPES: &[&str] = &[
    "st", "ave", "blvd", "rd", "dr", "ln", "way", "ct", "pl", "pkwy",
];

const DIRECTIONS: &[&str] = &["n", "s", "e", "w", "ne", "nw", "se", "sw"];

/// `(city, state)` pairs; cities repeat across records, giving the skewed
/// token-frequency profile real address data has.
const CITIES: &[(&str, &str)] = &[
    ("seattle", "wa"),
    ("redmond", "wa"),
    ("bellevue", "wa"),
    ("tacoma", "wa"),
    ("spokane", "wa"),
    ("portland", "or"),
    ("salem", "or"),
    ("eugene", "or"),
    ("san francisco", "ca"),
    ("los angeles", "ca"),
    ("san diego", "ca"),
    ("sacramento", "ca"),
    ("palo alto", "ca"),
    ("santa barbara", "ca"),
    ("fresno", "ca"),
    ("phoenix", "az"),
    ("tucson", "az"),
    ("denver", "co"),
    ("boulder", "co"),
    ("austin", "tx"),
    ("dallas", "tx"),
    ("houston", "tx"),
    ("chicago", "il"),
    ("springfield", "il"),
    ("boston", "ma"),
    ("cambridge", "ma"),
    ("new york", "ny"),
    ("albany", "ny"),
    ("buffalo", "ny"),
    ("miami", "fl"),
    ("orlando", "fl"),
    ("tampa", "fl"),
    ("atlanta", "ga"),
    ("nashville", "tn"),
    ("memphis", "tn"),
    ("detroit", "mi"),
    ("minneapolis", "mn"),
    ("st paul", "mn"),
    ("kansas city", "mo"),
    ("st louis", "mo"),
];

/// Configuration for the address generator.
#[derive(Debug, Clone, Copy)]
pub struct AddressConfig {
    /// Number of *base* (clean) records.
    pub base_records: usize,
    /// Near-duplicates added per 1.0 of base (e.g. 0.25 → 25% extra records
    /// that are noisy copies of random base records).
    pub duplicate_fraction: f64,
    /// Character edits applied to each duplicate (1–3 typical).
    pub max_typos: usize,
    /// Probability a duplicate also drops a token (formatting error).
    pub drop_token_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AddressConfig {
    fn default() -> Self {
        Self {
            base_records: 10_000,
            duplicate_fraction: 0.25,
            max_typos: 2,
            drop_token_prob: 0.2,
            seed: 0xadd2,
        }
    }
}

/// Generates one clean address record (~11 tokens on average).
fn base_record(rng: &mut impl Rng) -> String {
    let org = match rng.gen_range(0..3) {
        0 => format!(
            "{} {} {}",
            ORG_HEADS.choose(rng).expect("non-empty"),
            ORG_CORES.choose(rng).expect("non-empty"),
            ORG_TAILS.choose(rng).expect("non-empty")
        ),
        1 => format!(
            "{} {} {} {}",
            ORG_HEADS.choose(rng).expect("non-empty"),
            ORG_HEADS.choose(rng).expect("non-empty"),
            ORG_CORES.choose(rng).expect("non-empty"),
            ORG_TAILS.choose(rng).expect("non-empty")
        ),
        _ => format!(
            "{} {}",
            ORG_CORES.choose(rng).expect("non-empty"),
            ORG_TAILS.choose(rng).expect("non-empty")
        ),
    };
    let number = rng.gen_range(1..20_000);
    // Half the streets are numbered ("148th ave ne") — the paper's
    // motivating example of small-but-crucial differences.
    let street = if rng.gen_bool(0.5) {
        let ord = rng.gen_range(1..250u32);
        let suffix = match ord % 10 {
            1 if ord % 100 != 11 => "st",
            2 if ord % 100 != 12 => "nd",
            3 if ord % 100 != 13 => "rd",
            _ => "th",
        };
        format!(
            "{ord}{suffix} {} {}",
            STREET_TYPES.choose(rng).expect("non-empty"),
            DIRECTIONS.choose(rng).expect("non-empty")
        )
    } else {
        format!(
            "{} {}",
            STREET_NAMES.choose(rng).expect("non-empty"),
            STREET_TYPES.choose(rng).expect("non-empty")
        )
    };
    let city_idx = rng.gen_range(0..CITIES.len());
    let (city, state) = CITIES[city_idx];
    // Zip coherent with the city, with some within-city spread.
    let zip = 10_000 + city_idx * 1_000 + rng.gen_range(0..40usize) * 7;
    format!("{org} {number} {street} {city} {state} {zip}")
}

/// Generates the full corpus: base records followed by noisy duplicates.
/// Deterministic in `config.seed`.
pub fn generate_addresses(config: AddressConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out: Vec<String> = (0..config.base_records)
        .map(|_| base_record(&mut rng))
        .collect();
    let dups = (config.base_records as f64 * config.duplicate_fraction) as usize;
    for _ in 0..dups {
        let src = rng.gen_range(0..config.base_records);
        let mut s = out[src].clone();
        let typos = rng.gen_range(1..=config.max_typos.max(1));
        s = apply_typos(&s, typos, &mut rng);
        if rng.gen_bool(config.drop_token_prob) {
            s = drop_token(&s, &mut rng);
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = AddressConfig {
            base_records: 50,
            ..Default::default()
        };
        assert_eq!(generate_addresses(cfg), generate_addresses(cfg));
        let other = AddressConfig { seed: 1, ..cfg };
        assert_ne!(generate_addresses(cfg), generate_addresses(other));
    }

    #[test]
    fn record_count_includes_duplicates() {
        let cfg = AddressConfig {
            base_records: 100,
            duplicate_fraction: 0.25,
            ..Default::default()
        };
        assert_eq!(generate_addresses(cfg).len(), 125);
    }

    #[test]
    fn average_token_count_near_paper() {
        // The paper's address data averages 11 tokens per record.
        let cfg = AddressConfig {
            base_records: 2_000,
            ..Default::default()
        };
        let records = generate_addresses(cfg);
        let total: usize = records.iter().map(|r| r.split_whitespace().count()).sum();
        let avg = total as f64 / records.len() as f64;
        assert!((8.0..14.0).contains(&avg), "avg tokens = {avg}");
    }

    #[test]
    fn duplicates_are_near_their_source() {
        let cfg = AddressConfig {
            base_records: 200,
            duplicate_fraction: 0.5,
            max_typos: 1,
            drop_token_prob: 0.0,
            seed: 9,
        };
        let records = generate_addresses(cfg);
        // Every duplicate is within edit distance 2 of SOME base record
        // (one typo = ≤ 2 unit edits).
        for dup in &records[200..] {
            let close = records[..200]
                .iter()
                .any(|base| ssj_text::levenshtein(base, dup) <= 2);
            assert!(close, "duplicate {dup:?} is not near any base record");
        }
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let cfg = AddressConfig {
            base_records: 3_000,
            ..Default::default()
        };
        let records = generate_addresses(cfg);
        let mut freq = std::collections::HashMap::new();
        for r in &records {
            for t in r.split_whitespace() {
                *freq.entry(t.to_string()).or_insert(0usize) += 1;
            }
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Head token (a state abbreviation) orders of magnitude above median.
        let median = counts[counts.len() / 2];
        assert!(
            counts[0] > 20 * median,
            "head={} median={median}",
            counts[0]
        );
    }
}
