//! The paper's synthetic set workload (Section 8.1, "Experiments on
//! synthetic data sets"): equi-sized sets with elements drawn uniformly from
//! a fixed domain, "plus a few additional sets highly similar to existing
//! ones to generate valid output" — the same generation scheme as Cohen et
//! al. [8].

use rand::prelude::*;
use ssj_core::set::{ElementId, SetCollection};

/// Configuration for the uniform synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Number of base sets.
    pub base_sets: usize,
    /// Elements per set (the paper uses 50).
    pub set_size: usize,
    /// Domain size (the paper uses 10,000).
    pub domain: u32,
    /// Similar sets planted per 1.0 of base (e.g. 0.02 → 2% extra).
    pub similar_fraction: f64,
    /// Jaccard similarity of each planted set to its source (e.g. 0.9).
    pub planted_similarity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        Self {
            base_sets: 10_000,
            set_size: 50,
            domain: 10_000,
            similar_fraction: 0.02,
            planted_similarity: 0.9,
            seed: 0x0a1b,
        }
    }
}

/// Draws one random set of exactly `size` distinct elements from `0..domain`.
fn random_set(rng: &mut impl Rng, size: usize, domain: u32) -> Vec<ElementId> {
    assert!((size as u64) <= domain as u64, "set size exceeds domain");
    let mut set: Vec<ElementId> = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::with_capacity(size * 2);
    while set.len() < size {
        let e = rng.gen_range(0..domain);
        if seen.insert(e) {
            set.push(e);
        }
    }
    set.sort_unstable();
    set
}

/// Generates the collection: `base_sets` uniform sets followed by planted
/// near-duplicates at jaccard ≈ `planted_similarity` (same size: replace
/// `m` of the elements, where `Js = (size−m)/(size+m)`).
pub fn generate_uniform(config: UniformConfig) -> SetCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sets: Vec<Vec<ElementId>> = (0..config.base_sets)
        .map(|_| random_set(&mut rng, config.set_size, config.domain))
        .collect();
    let planted = (config.base_sets as f64 * config.similar_fraction) as usize;
    // Js of two size-s sets sharing s−m elements is (s−m)/(s+m):
    // m = s·(1−γ)/(1+γ).
    let gamma = config.planted_similarity;
    let m = ((config.set_size as f64) * (1.0 - gamma) / (1.0 + gamma)).round() as usize;
    for _ in 0..planted {
        let src = rng.gen_range(0..config.base_sets);
        let mut s = sets[src].clone();
        for _ in 0..m {
            // Replace a random element with a fresh one outside the set.
            let idx = rng.gen_range(0..s.len());
            loop {
                let e = rng.gen_range(0..config.domain);
                if s.binary_search(&e).is_err() {
                    s[idx] = e;
                    break;
                }
            }
            s.sort_unstable();
        }
        sets.push(s);
    }
    sets.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::similarity::jaccard;

    #[test]
    fn sets_have_requested_size_and_domain() {
        let cfg = UniformConfig {
            base_sets: 100,
            set_size: 50,
            domain: 10_000,
            ..Default::default()
        };
        let c = generate_uniform(cfg);
        for (_, s) in c.iter().take(100) {
            assert_eq!(s.len(), 50);
            assert!(s.iter().all(|&e| e < 10_000));
        }
    }

    #[test]
    fn planted_sets_hit_target_similarity() {
        let cfg = UniformConfig {
            base_sets: 200,
            similar_fraction: 0.1,
            planted_similarity: 0.9,
            ..Default::default()
        };
        let c = generate_uniform(cfg);
        assert_eq!(c.len(), 220);
        // Each planted set is ≈0.9-similar to some base set.
        for id in 200..220u32 {
            let best = (0..200u32)
                .map(|b| jaccard(c.set(id), c.set(b)))
                .fold(0.0f64, f64::max);
            assert!(best >= 0.85, "planted set {id} best similarity {best}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = UniformConfig {
            base_sets: 50,
            ..Default::default()
        };
        let a = generate_uniform(cfg);
        let b = generate_uniform(cfg);
        for id in 0..a.len() as u32 {
            assert_eq!(a.set(id), b.set(id));
        }
    }

    #[test]
    fn random_pairs_are_dissimilar() {
        let cfg = UniformConfig {
            base_sets: 100,
            similar_fraction: 0.0,
            ..Default::default()
        };
        let c = generate_uniform(cfg);
        // Uniform 50-of-10000 sets overlap by ~0.25 elements in expectation.
        let mut max = 0.0f64;
        for a in 0..50u32 {
            for b in (a + 1)..50 {
                max = max.max(jaccard(c.set(a), c.set(b)));
            }
        }
        assert!(max < 0.3, "uniform sets unexpectedly similar: {max}");
    }
}
