//! Zipf-distributed element sampling, for workloads with realistic skew
//! (token frequencies in text corpora are Zipfian; the element-frequency
//! skew is what prefix filter's rarity ordering and WtEnum's IDF weights
//! exploit).

use rand::prelude::*;
use ssj_core::set::{ElementId, SetCollection};

/// A Zipf(α) sampler over `{0..n}` using inverse-CDF lookup on the
/// precomputed normalized harmonic weights. Rank 0 is the most frequent
/// element.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(X ≤ i)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for domain size `n` and exponent `alpha > 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws one element (a rank in `0..n`).
    pub fn sample(&self, rng: &mut impl Rng) -> ElementId {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as ElementId
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }
}

/// Configuration for the Zipf set-collection generator.
#[derive(Debug, Clone, Copy)]
pub struct ZipfConfig {
    /// Number of sets.
    pub sets: usize,
    /// Mean set size (sizes are uniform in `[size/2, 3·size/2]`).
    pub mean_size: usize,
    /// Domain size.
    pub domain: usize,
    /// Zipf exponent (1.0 ≈ natural language).
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self {
            sets: 10_000,
            mean_size: 12,
            domain: 50_000,
            alpha: 1.0,
            seed: 0x21bf,
        }
    }
}

/// Generates a collection of sets whose elements follow a Zipf distribution.
pub fn generate_zipf(config: ZipfConfig) -> SetCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.domain, config.alpha);
    let lo = (config.mean_size / 2).max(1);
    let hi = config.mean_size + config.mean_size / 2;
    (0..config.sets)
        .map(|_| {
            let target = rng.gen_range(lo..=hi);
            let mut s: Vec<ElementId> = Vec::with_capacity(target);
            // Duplicate draws collapse (sets, not bags) — accept slightly
            // smaller sets rather than loop forever on heavy skew.
            for _ in 0..target * 3 {
                if s.len() >= target {
                    break;
                }
                s.push(zipf.sample(&mut rng));
                s.sort_unstable();
                s.dedup();
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_ranks_dominate() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of Zipf(1.0, 1000) carries ~39% of the mass.
        let frac = head as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "head mass = {frac}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!((zipf.sample(&mut rng) as usize) < 50);
        }
    }

    #[test]
    fn collection_shape() {
        let cfg = ZipfConfig {
            sets: 100,
            mean_size: 10,
            ..Default::default()
        };
        let c = generate_zipf(cfg);
        assert_eq!(c.len(), 100);
        let avg = c.avg_set_len();
        assert!((5.0..16.0).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn deterministic() {
        let cfg = ZipfConfig {
            sets: 30,
            ..Default::default()
        };
        let a = generate_zipf(cfg);
        let b = generate_zipf(cfg);
        for id in 0..30u32 {
            assert_eq!(a.set(id), b.set(id));
        }
    }
}
