//! Synthetic bibliography data — the stand-in for DBLP ("0.5 million
//! strings, each a concatenation of authors and title of a publication",
//! average 14 tokens). The paper reports its DBLP results were qualitatively
//! identical to the address results; this generator exists so that claim can
//! be re-checked here too.

use crate::typo::apply_typos;
use rand::prelude::*;

const FIRST_NAMES: &[&str] = &[
    "arvind",
    "venkatesh",
    "raghav",
    "surajit",
    "rajeev",
    "jennifer",
    "david",
    "michael",
    "hector",
    "jeffrey",
    "divesh",
    "nick",
    "anhai",
    "alon",
    "joseph",
    "samuel",
    "wei",
    "jiawei",
    "laura",
    "peter",
    "maria",
    "daniela",
    "magdalena",
    "johannes",
    "christos",
];

const LAST_NAMES: &[&str] = &[
    "arasu",
    "ganti",
    "kaushik",
    "chaudhuri",
    "motwani",
    "widom",
    "dewitt",
    "stonebraker",
    "garcia-molina",
    "ullman",
    "srivastava",
    "koudas",
    "doan",
    "halevy",
    "hellerstein",
    "madden",
    "wang",
    "han",
    "haas",
    "buneman",
    "zaniolo",
    "florescu",
    "balazinska",
    "gehrke",
    "faloutsos",
];

const TITLE_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "adaptive",
    "approximate",
    "exact",
    "distributed",
    "parallel",
    "incremental",
    "robust",
    "optimal",
    "query",
    "processing",
    "optimization",
    "evaluation",
    "joins",
    "indexing",
    "mining",
    "clustering",
    "streams",
    "similarity",
    "integration",
    "cleaning",
    "warehousing",
    "aggregation",
    "sampling",
    "views",
    "transactions",
    "recovery",
    "concurrency",
    "storage",
    "databases",
    "relational",
    "semistructured",
    "xml",
    "graphs",
    "learning",
    "ranking",
    "search",
    "deduplication",
    "extraction",
];

const CONNECTORS: &[&str] = &[
    "for", "of", "in", "with", "over", "using", "via", "and", "on",
];

/// Configuration for the bibliography generator.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// Number of base records.
    pub base_records: usize,
    /// Near-duplicate fraction (alternate formattings of the same paper).
    pub duplicate_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            base_records: 10_000,
            duplicate_fraction: 0.2,
            seed: 0xdb17,
        }
    }
}

fn base_record(rng: &mut impl Rng) -> String {
    let n_authors = rng.gen_range(1..=3);
    let mut parts: Vec<String> = Vec::new();
    for _ in 0..n_authors {
        parts.push(format!(
            "{} {}",
            FIRST_NAMES.choose(rng).expect("non-empty"),
            LAST_NAMES.choose(rng).expect("non-empty")
        ));
    }
    let title_len = rng.gen_range(4..9);
    for i in 0..title_len {
        if i > 0 && i % 3 == 2 {
            parts.push(CONNECTORS.choose(rng).expect("non-empty").to_string());
        }
        parts.push(TITLE_WORDS.choose(rng).expect("non-empty").to_string());
    }
    parts.join(" ")
}

/// Generates the corpus: base records, then noisy duplicates (typos and —
/// half the time — a dropped middle author, the classic citation variant).
pub fn generate_dblp(config: DblpConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out: Vec<String> = (0..config.base_records)
        .map(|_| base_record(&mut rng))
        .collect();
    let dups = (config.base_records as f64 * config.duplicate_fraction) as usize;
    for _ in 0..dups {
        let src = rng.gen_range(0..config.base_records);
        let mut s = out[src].clone();
        if rng.gen_bool(0.5) {
            s = apply_typos(&s, rng.gen_range(1..=2), &mut rng);
        } else {
            s = crate::typo::drop_token(&s, &mut rng);
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = DblpConfig {
            base_records: 100,
            duplicate_fraction: 0.2,
            seed: 3,
        };
        let a = generate_dblp(cfg);
        assert_eq!(a.len(), 120);
        assert_eq!(a, generate_dblp(cfg));
    }

    #[test]
    fn average_tokens_near_paper() {
        // DBLP averages 14 tokens per record in the paper.
        let cfg = DblpConfig {
            base_records: 2_000,
            ..Default::default()
        };
        let records = generate_dblp(cfg);
        let total: usize = records.iter().map(|r| r.split_whitespace().count()).sum();
        let avg = total as f64 / records.len() as f64;
        assert!((10.0..18.0).contains(&avg), "avg tokens = {avg}");
    }
}
