//! # ssj-datagen — workload generators for the reproduction
//!
//! The paper evaluates on a proprietary address corpus, DBLP, and a uniform
//! synthetic workload. This crate regenerates all three shapes
//! deterministically (see DESIGN.md "Data substitutions"):
//!
//! * [`address`] — US-style org+address strings with typo'd duplicates
//!   (stand-in for the proprietary 1M-record address data);
//! * [`dblp`] — author+title bibliography strings (stand-in for DBLP);
//! * [`uniform`] — the paper's synthetic equi-size workload (50 elements
//!   from a 10,000-element domain, planted similar pairs);
//! * [`zipf`] — skewed-element collections for stress tests;
//! * [`typo`] — the shared error model;
//! * [`adversarial`] — seeded corner-case workloads for the differential
//!   tester (`cargo xtask difftest`);
//! * [`spill`] — skewed, heterogeneous workloads stressing the
//!   out-of-core executor (`ssj-extern`): hot signature buckets, varied
//!   set sizes, planted duplicate groups.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod address;
pub mod adversarial;
pub mod dblp;
pub mod spill;
pub mod typo;
pub mod uniform;
pub mod zipf;

pub use address::{generate_addresses, AddressConfig};
pub use adversarial::{generate_adversarial, AdversarialWorkload};
pub use dblp::{generate_dblp, DblpConfig};
pub use spill::{generate_spill, SpillConfig};
pub use typo::{apply_typos, drop_token, random_edit};
pub use uniform::{generate_uniform, UniformConfig};
pub use zipf::{generate_zipf, Zipf, ZipfConfig};
