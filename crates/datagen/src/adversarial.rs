//! Seeded adversarial workloads for differential testing.
//!
//! `cargo xtask difftest` replays these against every signature scheme and
//! compares the verified pair set with the naive O(n²) oracle. The
//! generator deliberately over-represents the inputs that break
//! set-similarity joins in practice:
//!
//! * empty sets and singletons (the `Js(∅,∅) = 1` corner);
//! * exact duplicates and one-token near-duplicates;
//! * set sizes pinned to [`SizeIntervals`] boundaries, where Lemma-1
//!   routing decisions flip;
//! * thresholds at the extremes (`γ = 1.0` and near 0);
//! * tiny element domains with Zipf skew, forcing signature collisions;
//! * tied IDF-style weights, including occasional zero weights.
//!
//! Everything is a pure function of the seed, so a failing seed is a
//! complete, replayable bug report.

use rand::prelude::*;
use ssj_core::partenum::SizeIntervals;
use ssj_core::set::{ElementId, SetCollection, WeightMap};

use crate::zipf::Zipf;

/// Jaccard / max-fraction thresholds, including both extremes.
const GAMMAS: &[f64] = &[
    1.0, 0.98, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.35, 0.2, 0.1, 0.05, 0.02,
];

/// Weighted-jaccard thresholds (the scheme requires γ strictly in (0, 1)).
const GAMMA_WS: &[f64] = &[0.98, 0.9, 0.75, 0.6, 0.5, 0.35, 0.2, 0.1];

/// Small weight palette with heavy ties and an occasional zero — tied
/// weights exercise WtEnum's deterministic tie-breaking, zeros exercise
/// its positive-weight restriction.
const WEIGHTS: &[f64] = &[0.0, 0.5, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 5.0];

/// One fully specified difftest workload: the input sets plus every
/// threshold the scheme matrix needs, all derived from [`Self::seed`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialWorkload {
    /// The seed this workload was generated from (`0` for hand-built
    /// shrinker outputs).
    pub seed: u64,
    /// Jaccard / max-fraction threshold, in `(0, 1]`.
    pub gamma: f64,
    /// Weighted-jaccard threshold, strictly inside `(0, 1)`.
    pub gamma_w: f64,
    /// Hamming-distance threshold.
    pub hamming_k: usize,
    /// Weighted-overlap threshold `T` (kept strictly positive).
    pub weighted_t: f64,
    /// Element-domain size; all elements are below this.
    pub domain: usize,
    /// The input sets (unsorted, may contain duplicates — the collection
    /// canonicalizes).
    pub sets: Vec<Vec<ElementId>>,
    /// Explicit weight entries; elements not listed weigh 1.0.
    pub weights: Vec<(ElementId, f64)>,
}

impl AdversarialWorkload {
    /// The sets as a canonicalized [`SetCollection`].
    pub fn collection(&self) -> SetCollection {
        self.sets.iter().cloned().collect()
    }

    /// The weight entries as a [`WeightMap`] (default weight 1.0).
    pub fn weight_map(&self) -> WeightMap {
        WeightMap::from_pairs(self.weights.iter().copied(), 1.0)
    }

    /// Largest canonical set length, floored at 1 so scheme constructors
    /// always get a usable coverage bound.
    pub fn max_set_len(&self) -> usize {
        self.collection().max_set_len().max(1)
    }
}

/// Generates the adversarial workload for `seed`. Deterministic: equal
/// seeds give equal workloads.
pub fn generate_adversarial(seed: u64) -> AdversarialWorkload {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let gamma = *GAMMAS.choose(&mut rng).unwrap_or(&0.8);
    let gamma_w = *GAMMA_WS.choose(&mut rng).unwrap_or(&0.8);
    let hamming_k = rng.gen_range(0..=6);
    let weighted_t = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
        .choose(&mut rng)
        .copied()
        .unwrap_or(1.0);
    let domain = rng.gen_range(2..=48usize);
    let max_size = rng.gen_range(3..=24usize).min(domain);

    // Sizes where Lemma-1 routing flips: every interval endpoint of the
    // γ-derived size partition that the domain can actually realize.
    let intervals = SizeIntervals::new(gamma, max_size);
    let mut pinned: Vec<usize> = Vec::new();
    for i in 1..=intervals.count() {
        let (l, r) = intervals.interval(i);
        for s in [l, r] {
            if s <= domain && !pinned.contains(&s) {
                pinned.push(s);
            }
        }
    }

    let zipf = Zipf::new(domain, rng.gen_range(0.8..1.8));
    let base_sets = rng.gen_range(6..=36usize);
    let mut sets: Vec<Vec<ElementId>> = Vec::with_capacity(base_sets);
    for _ in 0..base_sets {
        let shape = rng.gen_range(0..100u32);
        let set = if shape < 8 {
            Vec::new()
        } else if shape < 18 {
            vec![rng.gen_range(0..domain) as ElementId]
        } else if shape < 40 {
            let target = pinned.choose(&mut rng).copied().unwrap_or(1);
            distinct_sample(&mut rng, domain, target)
        } else if shape < 66 {
            let target = rng.gen_range(0..=max_size);
            (0..target * 3)
                .map(|_| zipf.sample(&mut rng))
                .take(target.max(1) * 2)
                .collect()
        } else {
            let target = rng.gen_range(0..=max_size);
            distinct_sample(&mut rng, domain, target)
        };
        sets.push(set);
    }

    // Duplicate / near-duplicate post-pass: exact copies make γ = 1.0
    // meaningful; one-token edits sit right at size-interval boundaries.
    let extras = rng.gen_range(2..=(base_sets / 2).max(3));
    for _ in 0..extras {
        let Some(src) = sets.choose(&mut rng).cloned() else {
            break;
        };
        let mut copy = src;
        if rng.gen_bool(0.5) && !copy.is_empty() {
            let kind = rng.gen_range(0..3u32);
            if kind == 0 {
                let at = rng.gen_range(0..copy.len());
                copy.swap_remove(at);
            } else if kind == 1 {
                copy.push(rng.gen_range(0..domain) as ElementId);
            } else {
                let at = rng.gen_range(0..copy.len());
                copy[at] = rng.gen_range(0..domain) as ElementId;
            }
        }
        sets.push(copy);
    }

    let mut weights: Vec<(ElementId, f64)> = Vec::new();
    for e in 0..domain {
        if rng.gen_bool(0.7) {
            let w = *WEIGHTS.choose(&mut rng).unwrap_or(&1.0);
            weights.push((e as ElementId, w));
        }
    }

    AdversarialWorkload {
        seed,
        gamma,
        gamma_w,
        hamming_k,
        weighted_t,
        domain,
        sets,
        weights,
    }
}

/// `count` distinct elements drawn uniformly from `0..domain`.
fn distinct_sample(rng: &mut StdRng, domain: usize, count: usize) -> Vec<ElementId> {
    let mut pool: Vec<ElementId> = (0..domain as ElementId).collect();
    pool.shuffle(rng);
    pool.truncate(count.min(domain));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for seed in [0u64, 1, 7, 42, 1000] {
            assert_eq!(generate_adversarial(seed), generate_adversarial(seed));
        }
    }

    #[test]
    fn thresholds_stay_in_their_valid_ranges() {
        for seed in 0..200u64 {
            let w = generate_adversarial(seed);
            assert!(w.gamma > 0.0 && w.gamma <= 1.0, "seed {seed}: {}", w.gamma);
            assert!(
                w.gamma_w > 0.0 && w.gamma_w < 1.0,
                "seed {seed}: {}",
                w.gamma_w
            );
            assert!(w.weighted_t > 0.0);
            assert!(w.domain >= 2);
            assert!(w.sets.iter().flatten().all(|&e| (e as usize) < w.domain));
            assert!(w.max_set_len() >= 1);
        }
    }

    #[test]
    fn corners_are_actually_generated() {
        let mut saw_empty = false;
        let mut saw_singleton = false;
        let mut saw_duplicate = false;
        let mut saw_gamma_one = false;
        let mut saw_zero_weight = false;
        for seed in 0..300u64 {
            let w = generate_adversarial(seed);
            saw_empty |= w.sets.iter().any(Vec::is_empty);
            let c = w.collection();
            saw_singleton |= (0..c.len()).any(|i| c.len_of(i as u32) == 1);
            for a in 0..c.len() {
                for b in a + 1..c.len() {
                    if c.set(a as u32) == c.set(b as u32) {
                        saw_duplicate = true;
                    }
                }
            }
            saw_gamma_one |= w.gamma == 1.0;
            saw_zero_weight |= w.weights.iter().any(|&(_, wt)| wt == 0.0);
        }
        assert!(saw_empty, "no empty sets in 300 seeds");
        assert!(saw_singleton, "no singletons in 300 seeds");
        assert!(saw_duplicate, "no exact duplicates in 300 seeds");
        assert!(saw_gamma_one, "gamma = 1.0 never chosen in 300 seeds");
        assert!(saw_zero_weight, "no zero weights in 300 seeds");
    }

    #[test]
    fn boundary_pinning_hits_interval_endpoints() {
        // Across many seeds, some sets must land exactly on an interval
        // endpoint of their workload's gamma.
        let mut hits = 0usize;
        for seed in 0..100u64 {
            let w = generate_adversarial(seed);
            let c = w.collection();
            let iv = SizeIntervals::new(w.gamma, w.max_set_len());
            for i in 0..c.len() {
                let len = c.len_of(i as u32);
                if len == 0 || !iv.covers(len) {
                    continue;
                }
                let idx = iv.interval_of(len).expect("covered");
                let (l, r) = iv.interval(idx);
                if len == l || len == r {
                    hits += 1;
                }
            }
        }
        assert!(hits > 50, "only {hits} boundary-pinned sizes in 100 seeds");
    }
}
