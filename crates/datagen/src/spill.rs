//! Spill-stress workloads for the out-of-core executor (`ssj-extern`).
//!
//! The uniform generator produces equi-sized sets whose signatures spread
//! evenly across partitions — friendly to the spill path. This generator
//! deliberately is not:
//!
//! * **heterogeneous set sizes** exercise the segment's block layout
//!   (many tiny sets per block next to blocks holding a single large
//!   set) and the per-set signature count variance the partition sizer
//!   must absorb;
//! * a **hot sub-domain** shared by a fraction of the sets concentrates
//!   postings into dense signature buckets, producing long posting lists
//!   whose pair enumeration dominates a few partitions while others stay
//!   nearly empty — the skew case for budget accounting;
//! * **duplicate groups** plant guaranteed matches at every threshold,
//!   so differential runs always have output pairs to compare.

use rand::prelude::*;
use ssj_core::set::{ElementId, SetCollection};

/// Configuration for the spill-stress generator.
#[derive(Debug, Clone, Copy)]
pub struct SpillConfig {
    /// Base sets (before duplicate groups).
    pub base_sets: usize,
    /// Smallest set size drawn (inclusive, clamped to ≥ 1).
    pub min_set_size: usize,
    /// Largest set size drawn (inclusive).
    pub max_set_size: usize,
    /// Element domain.
    pub domain: u32,
    /// Fraction of base sets drawn mostly from the hot sub-domain.
    pub hot_fraction: f64,
    /// Size of the hot sub-domain (`0..hot_domain`); clamped to `domain`.
    pub hot_domain: u32,
    /// Groups of exact duplicates appended after the base sets.
    pub duplicate_groups: usize,
    /// Copies per duplicate group (≥ 2 for each group to emit pairs).
    pub group_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self {
            base_sets: 2_000,
            min_set_size: 4,
            max_set_size: 60,
            domain: 5_000,
            hot_fraction: 0.25,
            hot_domain: 64,
            duplicate_groups: 20,
            group_size: 3,
            seed: 0x5b11,
        }
    }
}

/// Draws `size` distinct elements from `0..domain` (sorted).
fn random_set(rng: &mut impl Rng, size: usize, domain: u32) -> Vec<ElementId> {
    let size = size.min(domain as usize);
    let mut set: Vec<ElementId> = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::with_capacity(size * 2);
    while set.len() < size {
        let e = rng.gen_range(0..domain);
        if seen.insert(e) {
            set.push(e);
        }
    }
    set.sort_unstable();
    set
}

/// Generates the spill-stress collection per `config`: heterogeneous base
/// sets (a `hot_fraction` of them drawn mostly from the hot sub-domain),
/// followed by `duplicate_groups` groups of identical sets.
pub fn generate_spill(config: SpillConfig) -> SetCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let lo = config.min_set_size.max(1);
    let hi = config.max_set_size.max(lo);
    let hot_domain = config.hot_domain.clamp(1, config.domain.max(1));
    let mut sets: Vec<Vec<ElementId>> =
        Vec::with_capacity(config.base_sets + config.duplicate_groups * config.group_size);
    for _ in 0..config.base_sets {
        let size = rng.gen_range(lo..=hi);
        let hot = rng.gen_bool(config.hot_fraction.clamp(0.0, 1.0));
        if hot {
            // Mostly hot elements plus a cold tail so hot sets collide in
            // their signature buckets without being outright identical.
            let hot_part = random_set(&mut rng, size.div_ceil(2), hot_domain);
            let mut set = random_set(&mut rng, size - hot_part.len(), config.domain.max(1));
            set.extend_from_slice(&hot_part);
            set.sort_unstable();
            set.dedup();
            sets.push(set);
        } else {
            sets.push(random_set(&mut rng, size, config.domain.max(1)));
        }
    }
    for _ in 0..config.duplicate_groups {
        let size = rng.gen_range(lo..=hi);
        let original = random_set(&mut rng, size, config.domain.max(1));
        for _ in 0..config.group_size.max(2) {
            sets.push(original.clone());
        }
    }
    sets.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized_as_configured() {
        let cfg = SpillConfig {
            base_sets: 300,
            duplicate_groups: 5,
            group_size: 3,
            ..Default::default()
        };
        let a = generate_spill(cfg);
        let b = generate_spill(cfg);
        assert_eq!(a.len(), 315);
        for id in 0..a.len() as u32 {
            assert_eq!(a.set(id), b.set(id));
        }
    }

    #[test]
    fn sets_are_canonical_and_heterogeneous() {
        let cfg = SpillConfig {
            base_sets: 500,
            min_set_size: 2,
            max_set_size: 80,
            ..Default::default()
        };
        let c = generate_spill(cfg);
        let mut sizes = std::collections::BTreeSet::new();
        for (_, s) in c.iter() {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "set must be canonical");
            sizes.insert(s.len());
        }
        assert!(sizes.len() > 10, "sizes should vary, got {sizes:?}");
    }

    #[test]
    fn duplicate_groups_plant_guaranteed_matches() {
        let cfg = SpillConfig {
            base_sets: 100,
            duplicate_groups: 4,
            group_size: 3,
            ..Default::default()
        };
        let c = generate_spill(cfg);
        // The last 12 sets form 4 groups of 3 identical sets.
        for g in 0..4u32 {
            let base = 100 + g * 3;
            for i in 1..3 {
                assert_eq!(c.set(base), c.set(base + i), "group {g} copy {i}");
            }
        }
    }

    #[test]
    fn hot_subdomain_concentrates_elements() {
        let cfg = SpillConfig {
            base_sets: 1_000,
            hot_fraction: 0.5,
            hot_domain: 32,
            domain: 100_000,
            ..Default::default()
        };
        let c = generate_spill(cfg);
        let hot_hits: usize = c
            .iter()
            .flat_map(|(_, s)| s.iter())
            .filter(|&&e| e < 32)
            .count();
        // With no hot bias, 32/100_000 of elements would land below 32;
        // the bias should put orders of magnitude more there.
        assert!(hot_hits > 1_000, "hot sub-domain underused: {hot_hits}");
    }
}
