//! Typo injection: the error model that turns clean records into the
//! near-duplicates a data-cleaning SSJoin must find ("misspellings caused by
//! typographic errors", Section 1).

use rand::prelude::*;

/// A single random character edit: substitution, insertion, deletion, or
/// adjacent transposition (uniformly chosen), over ASCII lowercase/digits.
pub fn random_edit(s: &str, rng: &mut impl Rng) -> String {
    let mut bytes: Vec<u8> = s.as_bytes().to_vec();
    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
    if bytes.is_empty() {
        return (*alphabet.choose(rng).expect("non-empty") as char).to_string();
    }
    match rng.gen_range(0..4) {
        0 => {
            // substitute
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = *alphabet.choose(rng).expect("non-empty");
        }
        1 => {
            // insert
            let i = rng.gen_range(0..=bytes.len());
            bytes.insert(i, *alphabet.choose(rng).expect("non-empty"));
        }
        2 => {
            // delete
            let i = rng.gen_range(0..bytes.len());
            bytes.remove(i);
        }
        _ => {
            // transpose adjacent
            if bytes.len() >= 2 {
                let i = rng.gen_range(0..bytes.len() - 1);
                bytes.swap(i, i + 1);
            } else {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = *alphabet.choose(rng).expect("non-empty");
            }
        }
    }
    String::from_utf8(bytes).expect("ascii edits preserve utf-8")
}

/// Applies `n` independent random edits.
pub fn apply_typos(s: &str, n: usize, rng: &mut impl Rng) -> String {
    let mut out = s.to_string();
    for _ in 0..n {
        out = random_edit(&out, rng);
    }
    out
}

/// Drops one whitespace-separated token (a formatting-convention error —
/// e.g. a missing unit designator in an address).
pub fn drop_token(s: &str, rng: &mut impl Rng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() <= 1 {
        return s.to_string();
    }
    let skip = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn single_edit_changes_distance_by_at_most_two() {
        // One random edit is at Levenshtein distance ≤ 2 from the original
        // (a transposition counts as up to 2 unit edits).
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "main street 42";
            let t = random_edit(s, &mut rng);
            let d = ssj_text::levenshtein(s, &t);
            assert!(d >= 1 || t == s, "edit should usually change the string");
            assert!(d <= 2, "edit moved too far: {t:?}");
        }
    }

    #[test]
    fn apply_typos_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in 0..4 {
            let s = "evergreen terrace 742";
            let t = apply_typos(s, n, &mut rng);
            assert!(ssj_text::levenshtein(s, &t) <= 2 * n);
        }
    }

    #[test]
    fn drop_token_removes_one_word() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = "one two three";
        let t = drop_token(s, &mut rng);
        assert_eq!(t.split_whitespace().count(), 2);
        assert_eq!(drop_token("single", &mut rng), "single");
    }

    #[test]
    fn empty_string_edit() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = random_edit("", &mut rng);
        assert_eq!(t.len(), 1);
    }
}
