//! `ssj-datagen` — writes the workspace's synthetic corpora to text files
//! (one record per line), ready for the `ssjoin` CLI.
//!
//! ```text
//! ssj-datagen <address|dblp> --count N [--seed S] [--output FILE]
//! ```

use ssj_datagen::{generate_addresses, generate_dblp, AddressConfig, DblpConfig};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "ssj-datagen <address|dblp> --count N [--seed S] [--output FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(kind) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut count = 1_000usize;
    let mut seed = 42u64;
    let mut output: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--count" => {
                i += 1;
                count = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(c) => c,
                    None => {
                        eprintln!("--count needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed needs an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--output" => {
                i += 1;
                output = args.get(i).cloned();
                if output.is_none() {
                    eprintln!("--output needs a path");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let records = match kind.as_str() {
        "address" => {
            let base = (count as f64 / 1.25).round().max(1.0) as usize;
            let mut v = generate_addresses(AddressConfig {
                base_records: base,
                seed,
                ..Default::default()
            });
            v.truncate(count);
            v
        }
        "dblp" => {
            let base = (count as f64 / 1.2).round().max(1.0) as usize;
            let mut v = generate_dblp(DblpConfig {
                base_records: base,
                seed,
                ..Default::default()
            });
            v.truncate(count);
            v
        }
        other => {
            eprintln!("unknown dataset {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let result = match &output {
        Some(path) => std::fs::File::create(path).map(|f| {
            let mut w = std::io::BufWriter::new(f);
            for r in &records {
                writeln!(w, "{r}").expect("write record");
            }
        }),
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            for r in &records {
                writeln!(w, "{r}").expect("write record");
            }
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} {kind} records", records.len());
    ExitCode::SUCCESS
}
