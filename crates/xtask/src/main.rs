#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! `cargo xtask` — workspace automation CLI.
//!
//! Wired up through the repo-level `.cargo/config.toml` alias:
//! `xtask = "run --quiet --package xtask --"`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root <dir>]   run the repo-specific static-analysis pass
                        (exit 0 = clean, 1 = violations, 2 = engine error)
  locklint [options]    interprocedural lock-order & blocking-under-lock
                        analysis over the concurrent subsystem
                        (exit 0 = clean, 1 = findings, 2 = engine error)
    --root <dir>        workspace root (default: walk up from cwd)
    --json              machine-readable report (findings + suppressions)
  hotlint [options]     hot-path allocation/copy analysis: propagates a
                        \"hot\" property from the verify/query/signature/
                        WAL roots through the call graph and reports
                        allocations, clones, default-hasher maps, and
                        blocking I/O on hot paths
                        (exit 0 = clean, 1 = findings, 2 = engine error)
    --root <dir>        workspace root (default: walk up from cwd)
    --json              machine-readable report (findings + suppressions)
  durlint [options]     crash-consistency protocol analysis: per-function
                        filesystem-event replay over the call graph —
                        fsync-before-rename, dir-fsync-after-rename,
                        ack-implies-WAL-sync, staged-write discipline,
                        verified recovery reads, tmp-litter sweeps
                        (exit 0 = clean, 1 = findings, 2 = engine error)
    --root <dir>        workspace root (default: walk up from cwd)
    --json              machine-readable report (findings + suppressions)
  benchdiff [options]   compare current bench results against the
                        committed BENCH_join.json / BENCH_serve.json
                        baselines: counters must match exactly, timings
                        within a tolerance factor
                        (exit 0 = within band, 1 = regression, 2 = error)
    --root <dir>        workspace root (default: walk up from cwd)
    --join <file>       current join_bench output to diff
    --serve <file>      current serve_bench output to diff
    --factor <x>        timing tolerance factor (default 4.0)
  difftest [options]    differential-test every signature scheme against
                        the naive oracle on seeded adversarial workloads
                        (exit 0 = agreement, 1 = divergences, 2 = bad usage)
    --seeds <n>         number of consecutive seeds to sweep (default 100)
    --schemes <a,b,..>  comma-separated scheme subset; any of:
                        pe-hamming, pe-jaccard, general-jaccard,
                        general-maxfraction, wtenum, wtenum-jaccard,
                        prefix, identity, lsh, serve, extern
    --replay <seed>     verbosely re-run one seed (for minimized repros)
  crashtest [options]   crash-fault injection against the durable store:
                        seeded workloads, adversarial WAL/snapshot
                        mutations (torn tails, bit flips, stray tmp
                        files), recovery compared exactly with an
                        in-memory oracle
                        (exit 0 = agreement, 1 = divergences, 2 = bad usage)
    --seeds <n>         number of consecutive seeds to sweep (default 100)
    --replay <seed>     verbosely re-run one seed
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("locklint") => locklint(&args[1..]),
        Some("hotlint") => hotlint(&args[1..]),
        Some("durlint") => durlint(&args[1..]),
        Some("benchdiff") => benchdiff(&args[1..]),
        Some("difftest") => difftest(&args[1..]),
        Some("crashtest") => crashtest(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn difftest(args: &[String]) -> ExitCode {
    let mut config = xtask::difftest::DifftestConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => config.seeds = n,
                _ => {
                    eprintln!("error: --seeds needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--replay" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => config.replay = Some(seed),
                _ => {
                    eprintln!("error: --replay needs a seed (integer)");
                    return ExitCode::from(2);
                }
            },
            "--schemes" => match it.next() {
                Some(list) => {
                    let mut schemes = Vec::new();
                    for name in list.split(',').filter(|s| !s.is_empty()) {
                        match xtask::difftest::SchemeKind::parse(name) {
                            Some(k) => schemes.push(k),
                            None => {
                                eprintln!("error: unknown scheme `{name}`\n\n{USAGE}");
                                return ExitCode::from(2);
                            }
                        }
                    }
                    if schemes.is_empty() {
                        eprintln!("error: --schemes needs at least one scheme name");
                        return ExitCode::from(2);
                    }
                    config.schemes = schemes;
                }
                None => {
                    eprintln!("error: --schemes needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown difftest option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let divergences = xtask::difftest::run(&config);
    if divergences.is_empty() {
        let scope = match config.replay {
            Some(seed) => format!("seed {seed}"),
            None => format!("{} seeds", config.seeds),
        };
        println!(
            "difftest: all schemes agree with the oracle over {scope} ({} scheme(s))",
            config.schemes.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("difftest: {} divergence(s)", divergences.len());
        ExitCode::from(1)
    }
}

fn crashtest(args: &[String]) -> ExitCode {
    let mut config = xtask::crashtest::CrashtestConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => config.seeds = n,
                _ => {
                    eprintln!("error: --seeds needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--replay" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => config.replay = Some(seed),
                _ => {
                    eprintln!("error: --replay needs a seed (integer)");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown crashtest option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let divergences = xtask::crashtest::run(&config);
    if divergences.is_empty() {
        let scope = match config.replay {
            Some(seed) => format!("seed {seed}"),
            None => format!("{} seeds", config.seeds),
        };
        println!("crashtest: every crash point recovered to exactly the oracle state over {scope}");
        ExitCode::SUCCESS
    } else {
        println!("crashtest: {} divergence(s)", divergences.len());
        ExitCode::from(1)
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match xtask::run_lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::from(1)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn locklint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("error: unknown locklint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match xtask::locklint::run_locklint(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for v in &report.findings {
                    println!("{v}");
                }
                println!(
                    "xtask locklint: {} finding(s), {} suppressed by annotation \
                     ({} file(s), {} function(s))",
                    report.findings.len(),
                    report.suppressed.len(),
                    report.files,
                    report.functions
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn hotlint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("error: unknown hotlint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match xtask::hotlint::run_hotlint(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for v in &report.findings {
                    println!("{v}");
                }
                println!(
                    "xtask hotlint: {} finding(s), {} suppressed by annotation \
                     ({} file(s), {} function(s), {} hot)",
                    report.findings.len(),
                    report.suppressed.len(),
                    report.files,
                    report.functions,
                    report.hot_functions
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn durlint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("error: unknown durlint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match xtask::durlint::run_durlint(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for v in &report.findings {
                    println!("{v}");
                }
                println!(
                    "xtask durlint: {} finding(s), {} suppressed by annotation \
                     ({} file(s), {} function(s), {} rename site(s))",
                    report.findings.len(),
                    report.suppressed.len(),
                    report.files,
                    report.functions,
                    report.rename_sites
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn benchdiff(args: &[String]) -> ExitCode {
    let mut config = xtask::benchdiff::BenchdiffConfig::default();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--join" => match it.next() {
                Some(p) => config.current_join = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --join needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--serve" => match it.next() {
                Some(p) => config.current_serve = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --serve needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--factor" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(x)) if x >= 1.0 => config.factor = x,
                _ => {
                    eprintln!("error: --factor needs a number >= 1.0");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown benchdiff option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if config.current_join.is_none() && config.current_serve.is_none() {
        eprintln!("error: benchdiff needs --join and/or --serve (current results to compare)");
        return ExitCode::from(2);
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match xtask::benchdiff::run_benchdiff(&root, &config) {
        Ok(report) => {
            print!("{report}");
            if report.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Resolves the workspace root for lint-style subcommands: an explicit
/// `--root`, else the nearest `[workspace]` manifest above the cwd.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(err) => {
                    eprintln!("error: cannot determine working directory: {err}");
                    return Err(ExitCode::from(2));
                }
            };
            match xtask::find_repo_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return Err(ExitCode::from(2));
                }
            }
        }
    };
    if !root.is_dir() {
        eprintln!("error: root {} is not a directory", root.display());
        return Err(ExitCode::from(2));
    }
    if !root.join("crates").is_dir() {
        eprintln!(
            "error: {} has no crates/ directory — not a lintable workspace root",
            root.display()
        );
        return Err(ExitCode::from(2));
    }
    Ok(root)
}
