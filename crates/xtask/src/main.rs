#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! `cargo xtask` — workspace automation CLI.
//!
//! Wired up through the repo-level `.cargo/config.toml` alias:
//! `xtask = "run --quiet --package xtask --"`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root <dir>]   run the repo-specific static-analysis pass
                        (exit 0 = clean, 1 = violations, 2 = engine error)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(err) => {
                    eprintln!("error: cannot determine working directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_repo_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if !root.is_dir() {
        eprintln!("error: lint root {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    if !root.join("crates").is_dir() {
        eprintln!(
            "error: {} has no crates/ directory — not a lintable workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }
    match xtask::run_lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::from(1)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
