//! `cargo xtask locklint` — interprocedural lock-order and
//! blocking-under-lock static analysis (DESIGN.md §5f).
//!
//! The concurrent subsystem (`ssj-serve` + `ssj-store`) follows one
//! canonical lock order: per-shard `shard-index` locks in ascending shard
//! order first, then the `store-wal` mutex. The runtime lock witness
//! (`ssj_core::lockwitness`) checks that order exactly on every debug
//! acquisition; this pass checks it *conservatively* over all source —
//! the same signature→verify split the paper applies to joins: a cheap
//! conservative filter whose candidates an exact mechanism confirms.
//!
//! The pass extends the `xtask lint` scanner (`scan.rs`): sources are
//! masked (comments/strings/test regions blanked, line-preserving), then
//! parsed into per-function event lists — lock acquisitions matched
//! against a small registry of lock-site patterns, blocking operations,
//! calls, guard drops, scope ends. Per-function summaries (which lock
//! classes a function may acquire, whether it may block) propagate over a
//! name-resolved call graph to a fixpoint, and a replay of each
//! function's events against those summaries reports:
//!
//! | id                    | finding |
//! |-----------------------|---------|
//! | `lock-order`          | acquisition (direct or via call) that descends the canonical rank order, or re-acquires a held non-reentrant class |
//! | `lock-order-cycle`    | a cycle in the aggregated class-order graph (deadlock potential) |
//! | `multi-shard-order`   | iterated/nested acquisition of a multi-instance class outside the canonical helpers (ascending order not statically provable) |
//! | `blocking-under-lock` | fsync/write/accept/recv/send/sleep (or a call that may reach one) while any lock is held |
//! | `guard-lifetime`      | a guard stored into an `Option`/collection at the acquisition site |
//! | `locklint-annotation` | malformed suppression annotation (unknown rule or empty justification) |
//! | `locklint-scope`      | any annotation inside `crates/core` (zero-allowlist policy, as for `xtask lint`) |
//!
//! Deliberate violations are suppressed in-source, next to the code they
//! justify (no central allowlist file — the justification must live at
//! the site):
//!
//! ```text
//! // locklint: allow(blocking-under-lock): reason…          (this + next line)
//! // locklint: allow(blocking-under-lock, fn): reason…      (whole enclosing fn)
//! ```
//!
//! Every annotation must carry a non-empty reason, and `crates/core` may
//! carry none at all.

pub mod analysis;
pub mod extract;

use crate::{rel, rs_files, LintError, Violation};
use std::fmt::Write as _;
use std::path::Path;

/// Rule id: rank-order violation or non-reentrant re-acquisition.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id: cycle in the aggregated lock-class order graph.
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// Rule id: un-audited multi-instance (per-shard) acquisition.
pub const MULTI_SHARD_ORDER: &str = "multi-shard-order";
/// Rule id: blocking operation reachable while a lock is held.
pub const BLOCKING_UNDER_LOCK: &str = "blocking-under-lock";
/// Rule id: guard stored into an `Option`/collection at the acquire site.
pub const GUARD_LIFETIME: &str = "guard-lifetime";
/// Rule id: malformed `// locklint: allow(…)` annotation.
pub const ANNOTATION_RULE: &str = "locklint-annotation";
/// Rule id: annotation inside `crates/core` (zero-allowlist policy).
pub const SCOPE_RULE: &str = "locklint-scope";

/// The analysis rules an annotation may suppress.
pub const SUPPRESSIBLE_RULES: [&str; 5] = [
    LOCK_ORDER,
    LOCK_ORDER_CYCLE,
    MULTI_SHARD_ORDER,
    BLOCKING_UNDER_LOCK,
    GUARD_LIFETIME,
];

/// One lock class in the canonical order (mirrors
/// `ssj_core::lockwitness`: `shard-index` rank 0, `store-wal` rank 10).
#[derive(Debug, Clone, Copy)]
pub struct LockClassDef {
    /// Class name as reported in findings.
    pub name: &'static str,
    /// Canonical rank: lower ranks must be acquired first.
    pub rank: u16,
    /// Whether the class has many instances (per-shard locks) whose keys
    /// must themselves ascend — intra-class nesting is then order-relevant.
    pub multi_instance: bool,
}

/// The workspace lock registry, in rank order.
pub const CLASSES: [LockClassDef; 2] = [
    LockClassDef {
        name: "shard-index",
        rank: 0,
        multi_instance: true,
    },
    LockClassDef {
        name: "store-wal",
        rank: 10,
        multi_instance: false,
    },
];

const SHARD_INDEX: usize = 0;
const STORE_WAL: usize = 1;

/// How a lock-site pattern is matched in masked source.
#[derive(Debug, Clone, Copy)]
pub enum SiteKind {
    /// A field-qualified method chain like `.index.read(`, matched at the
    /// leading dot.
    Chain(&'static str),
    /// A guard-returning helper function, matched as a call by name
    /// (`lock_all_read(…)`). The helper's own body is the audited,
    /// annotated acquisition; call sites inherit the acquire.
    Helper(&'static str),
}

/// One entry in the lock-site registry.
#[derive(Debug, Clone, Copy)]
pub struct LockSite {
    /// Textual pattern.
    pub kind: SiteKind,
    /// Index into [`CLASSES`].
    pub class: usize,
    /// Acquisition mode, for messages (`read` / `write` / `lock`).
    pub mode: &'static str,
}

/// The lock-site registry: how each named lock is acquired in source.
pub const LOCK_SITES: [LockSite; 5] = [
    LockSite {
        kind: SiteKind::Chain(".index.read("),
        class: SHARD_INDEX,
        mode: "read",
    },
    LockSite {
        kind: SiteKind::Chain(".index.write("),
        class: SHARD_INDEX,
        mode: "write",
    },
    LockSite {
        kind: SiteKind::Chain(".wal.lock("),
        class: STORE_WAL,
        mode: "lock",
    },
    LockSite {
        kind: SiteKind::Helper("lock_all_read"),
        class: SHARD_INDEX,
        mode: "read",
    },
    LockSite {
        kind: SiteKind::Helper("lock_owner_write"),
        class: SHARD_INDEX,
        mode: "write",
    },
];

/// Dotted blocking-operation tokens (`pattern`, human description).
pub const BLOCKING_CHAINS: [(&str, &str); 8] = [
    (".sync_data(", "fsync"),
    (".sync_all(", "fsync"),
    (".write_all(", "file/socket write"),
    (".set_len(", "file truncation"),
    (".accept(", "socket accept"),
    (".recv(", "blocking channel receive"),
    (".recv_timeout(", "blocking channel receive"),
    (".send(", "bounded channel send (blocks when full)"),
];

/// Blocking operations matched as bare call names.
pub const BLOCKING_CALLS: [(&str, &str); 1] = [("sleep", "thread::sleep")];

/// Methods of the guarded per-shard data (`JaccardIndex`) and other pure
/// container operations. A dotted call to one of these is a data
/// operation on an already-held guard, not a service-layer entry point —
/// without this cut, the conservative name-union call resolver would map
/// e.g. `guard.insert(…)` onto `ShardedIndex::insert` (which acquires the
/// very lock being held) and report a false self-deadlock.
pub const DATA_METHODS: [&str; 9] = [
    "insert",
    "remove",
    "try_remove",
    "query_counted",
    "dump_live",
    "len",
    "is_empty",
    "next_id",
    "push",
];

/// Source directories the pass analyzes: the concurrent subsystem and
/// everything it calls into. (`xtask` itself and the offline `compat/`
/// shims are out of scope; the `std-sync-lock` lint rule separately
/// guarantees no other crate grows unregistered `std::sync` locks.)
pub const SCAN_DIRS: [&str; 6] = [
    "crates/core/src",
    "crates/io/src",
    "crates/store/src",
    "crates/server/src",
    "crates/extern/src",
    "crates/cluster/src",
];

/// A finding that an in-source annotation suppressed, kept for reporting
/// (`--json`) so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedFinding {
    /// Rule the annotation suppressed.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The annotation's written justification.
    pub reason: String,
    /// What the finding said.
    pub message: String,
}

/// Everything one `locklint` run produced.
#[derive(Debug, Default)]
pub struct LocklintReport {
    /// Surviving (un-suppressed) findings, sorted by path/line/rule.
    pub findings: Vec<Violation>,
    /// Findings a written annotation suppressed.
    pub suppressed: Vec<SuppressedFinding>,
    /// Files analyzed.
    pub files: usize,
    /// Functions summarized.
    pub functions: usize,
}

impl LocklintReport {
    /// Machine-readable report (for trend tracking next to
    /// `BENCH_serve.json`): findings, suppressions, and scan size.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, v) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            );
        }
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{},\"message\":{}}}",
                json_str(s.rule),
                json_str(&s.path),
                s.line,
                json_str(&s.reason),
                json_str(&s.message)
            );
        }
        let _ = write!(
            out,
            "],\"files\":{},\"functions\":{}}}",
            self.files, self.functions
        );
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the whole pass over the workspace at `root`.
pub fn run_locklint(root: &Path) -> Result<LocklintReport, LintError> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        for file in rs_files(&abs)? {
            let relpath = rel(root, &file);
            let raw = crate::read(&file)?;
            files.push(extract::extract_file(&relpath, &raw));
        }
    }

    let mut findings = Vec::new();

    // Annotation hygiene: well-formed, justified, and never in core.
    for file in &files {
        for ann in &file.annotations {
            if file.path.starts_with("crates/core/") {
                findings.push(Violation {
                    rule: SCOPE_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: format!(
                        "locklint annotation in ssj-core (suppresses `{}`); core must \
                         satisfy every rule outright — fix the code or move the \
                         locking out of core",
                        ann.rule
                    ),
                });
            }
            if !SUPPRESSIBLE_RULES.contains(&ann.rule.as_str()) {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: format!(
                        "annotation names unknown rule `{}` (expected one of: {})",
                        ann.rule,
                        SUPPRESSIBLE_RULES.join(", ")
                    ),
                });
            }
            if ann.reason.is_empty() {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: "annotation has no written justification after `):` — \
                              suppressions are documentation, not magic"
                        .to_string(),
                });
            }
        }
    }

    let outcome = analysis::analyze(&files);
    let functions = files.iter().map(|f| f.fns.len()).sum();

    // Partition analysis findings into suppressed vs surviving.
    let mut suppressed = Vec::new();
    for finding in outcome.findings {
        match suppressing_annotation(&files, &finding) {
            Some(reason) => suppressed.push(SuppressedFinding {
                rule: finding.rule,
                path: finding.path,
                line: finding.line,
                reason,
                message: finding.message,
            }),
            None => findings.push(finding),
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings.dedup();
    suppressed.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    suppressed.dedup();

    Ok(LocklintReport {
        findings,
        suppressed,
        files: files.len(),
        functions,
    })
}

/// The justification of the annotation that suppresses `finding`, if any.
///
/// A line-level annotation covers its own line and the next; an fn-level
/// annotation covers every line of the function whose body contains it.
fn suppressing_annotation(files: &[extract::FileExtract], finding: &Violation) -> Option<String> {
    let file = files.iter().find(|f| f.path == finding.path)?;
    for ann in &file.annotations {
        if ann.rule != finding.rule || ann.reason.is_empty() {
            continue;
        }
        let covered = if ann.fn_level {
            file.fns
                .iter()
                .any(|f| f.contains_line(ann.line) && f.contains_line(finding.line))
        } else {
            finding.line == ann.line || finding.line == ann.line + 1
        };
        if covered {
            return Some(ann.reason.clone());
        }
    }
    None
}
