//! Source → per-function event lists for the locklint pass.
//!
//! Works on masked source (comments/strings blanked, `#[cfg(test)]`
//! regions stripped — see `scan.rs`), so every pattern match below is
//! against real code. Masking is line- and byte-preserving, so offsets
//! and line numbers computed here are valid against the raw file too;
//! annotations are the one thing parsed from the *raw* lines, because
//! they live in comments.
//!
//! The structural machinery (function spans, line mapping, annotation
//! syntax, call-graph types) is shared with `hotlint` and lives in
//! [`crate::callgraph`]; this module owns only the lock-specific event
//! model and its token scan.

use super::{SiteKind, BLOCKING_CALLS, BLOCKING_CHAINS, DATA_METHODS, LOCK_SITES};
use crate::callgraph::{
    fn_spans, is_ident, let_binding, line_of, line_start_offsets, nested_ranges, parse_annotations,
    single_ident_arg, FnSpan, ITER_MARKERS, KEYWORDS,
};
use crate::scan::{mask_non_code, strip_test_regions};

pub use crate::callgraph::Annotation;

/// One ordered occurrence inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lock-site pattern matched (direct or via a registered helper).
    Acquire {
        /// Index into [`super::LOCK_SITES`].
        site: usize,
        /// `let`-bound guard name, if the acquisition is bound.
        binding: Option<String>,
        /// Inside a loop body or an iterator-adapter closure on the same
        /// line — per-instance order not statically provable.
        iterated: bool,
        /// Acquisition appears inside `Some(…)` / `.push(…)` on its line
        /// (guard stored into an Option/collection).
        stored: bool,
        /// Brace depth at the acquisition (for scope-based release).
        depth: usize,
        /// 1-based source line.
        line: usize,
    },
    /// `drop(<ident>)` of a bound guard.
    Release {
        /// The dropped identifier.
        binding: String,
    },
    /// A call to a workspace function (possibly; resolution is by name).
    Call {
        /// Callee name as written.
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// A blocking operation from the registry.
    Block {
        /// Human description (e.g. `fsync`).
        desc: &'static str,
        /// 1-based source line.
        line: usize,
    },
    /// `;` — releases unbound transient guards of the statement.
    StatementEnd,
    /// `}` — releases guards bound at a deeper depth.
    ScopeEnd {
        /// Depth after the closing brace.
        to_depth: usize,
    },
}

/// A function found in a file, with its extracted event list.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name as written after `fn`.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based first and last line of the body (inclusive).
    pub body_lines: (usize, usize),
    /// Ordered events extracted from the body (nested fns excluded).
    pub events: Vec<Event>,
}

impl FnInfo {
    /// Whether `line` falls inside this function (signature or body).
    pub fn contains_line(&self, line: usize) -> bool {
        line >= self.start_line && line <= self.body_lines.1
    }
}

/// Extraction result for one file.
#[derive(Debug)]
pub struct FileExtract {
    /// Repo-relative path.
    pub path: String,
    /// Functions with their event lists.
    pub fns: Vec<FnInfo>,
    /// Suppression annotations (from raw comment lines).
    pub annotations: Vec<Annotation>,
}

/// Masks `raw`, finds functions, and extracts events + annotations.
pub fn extract_file(relpath: &str, raw: &str) -> FileExtract {
    let masked = strip_test_regions(&mask_non_code(raw));
    let line_starts = line_start_offsets(&masked);
    let spans = fn_spans(&masked);

    let fns = spans
        .iter()
        .enumerate()
        .map(|(i, span)| {
            // Skip nested fn bodies: they are extracted as their own
            // functions and resolved through the call graph.
            let nested = nested_ranges(&spans, i);
            FnInfo {
                name: span.name.clone(),
                start_line: line_of(&line_starts, span.kw_pos),
                body_lines: (
                    line_of(&line_starts, span.body_start),
                    line_of(&line_starts, span.body_end.saturating_sub(1)),
                ),
                events: scan_events(&masked, span, &nested, &line_starts),
            }
        })
        .collect();

    FileExtract {
        path: relpath.to_string(),
        fns,
        annotations: parse_annotations(raw, "locklint"),
    }
}

fn scan_events(
    masked: &str,
    span: &FnSpan,
    skip: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<Event> {
    let bytes = masked.as_bytes();
    let mut events = Vec::new();
    let mut depth = 1usize; // inside the body's `{`
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    let mut stmt_start = span.body_start + 1;
    let mut i = span.body_start + 1;
    let end = span.body_end.saturating_sub(1);

    while i < end {
        if let Some(&(_, skip_end)) = skip.iter().find(|&&(s, e)| i >= s && i < e) {
            i = skip_end;
            stmt_start = i;
            continue;
        }
        let b = bytes[i];
        match b {
            b'{' => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
                stmt_start = i + 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                while loop_depths.last().is_some_and(|&d| d > depth) {
                    loop_depths.pop();
                }
                events.push(Event::ScopeEnd { to_depth: depth });
                stmt_start = i + 1;
                i += 1;
            }
            b';' => {
                events.push(Event::StatementEnd);
                stmt_start = i + 1;
                pending_loop = false;
                i += 1;
            }
            b'.' => {
                let rest = &masked[i..end];
                if let Some(marker) = ITER_MARKERS.iter().find(|m| rest.starts_with(**m)) {
                    // A braced iterator-adapter closure is an iteration
                    // context: acquisitions inside it repeat per item.
                    pending_loop = true;
                    i += marker.len();
                    continue;
                }
                if let Some(site) = LOCK_SITES.iter().position(|s| match s.kind {
                    SiteKind::Chain(p) => rest.starts_with(p),
                    SiteKind::Helper(_) => false,
                }) {
                    let pat_len = match LOCK_SITES[site].kind {
                        SiteKind::Chain(p) => p.len(),
                        SiteKind::Helper(_) => 0,
                    };
                    events.push(acquire_event(
                        site,
                        masked,
                        stmt_start,
                        i,
                        depth,
                        !loop_depths.is_empty(),
                        line_starts,
                    ));
                    i += pat_len;
                } else if let Some(&(pat, desc)) =
                    BLOCKING_CHAINS.iter().find(|&&(p, _)| rest.starts_with(p))
                {
                    events.push(Event::Block {
                        desc,
                        line: line_of(line_starts, i),
                    });
                    i += pat.len();
                } else {
                    i += 1;
                }
            }
            _ if is_ident(b) && !b.is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) => {
                let word_start = i;
                let mut j = i;
                while j < end && is_ident(bytes[j]) {
                    j += 1;
                }
                let word = &masked[word_start..j];
                if word == "for" || word == "while" || word == "loop" {
                    pending_loop = true;
                    i = j;
                    continue;
                }
                if KEYWORDS.contains(&word) {
                    i = j;
                    continue;
                }
                // Next non-whitespace byte decides what this ident is.
                let mut k = j;
                while k < end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let next = if k < end { bytes[k] } else { 0 };
                if next == b'!' {
                    // Macro invocation — out of scope.
                    i = j;
                    continue;
                }
                if next != b'(' {
                    i = j;
                    continue;
                }
                let dotted = word_start > 0 && bytes[word_start - 1] == b'.';
                let line = line_of(line_starts, word_start);
                if word == "drop" {
                    if let Some(ident) = single_ident_arg(masked, k, end) {
                        events.push(Event::Release { binding: ident });
                        i = j;
                        continue;
                    }
                }
                if let Some(site) = LOCK_SITES.iter().position(|s| match s.kind {
                    SiteKind::Helper(h) => h == word,
                    SiteKind::Chain(_) => false,
                }) {
                    events.push(acquire_event(
                        site,
                        masked,
                        stmt_start,
                        word_start,
                        depth,
                        !loop_depths.is_empty(),
                        line_starts,
                    ));
                    i = j;
                    continue;
                }
                if let Some(&(_, desc)) = BLOCKING_CALLS.iter().find(|&&(n, _)| n == word) {
                    events.push(Event::Block { desc, line });
                    i = j;
                    continue;
                }
                if dotted && DATA_METHODS.contains(&word) {
                    i = j;
                    continue;
                }
                if word.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Type constructor / enum variant, not a workspace fn.
                    i = j;
                    continue;
                }
                events.push(Event::Call {
                    name: word.to_string(),
                    line,
                });
                i = j;
            }
            _ => i += 1,
        }
    }
    events
}

fn acquire_event(
    site: usize,
    masked: &str,
    stmt_start: usize,
    pos: usize,
    depth: usize,
    in_loop: bool,
    line_starts: &[usize],
) -> Event {
    let line = line_of(line_starts, pos);
    let line_prefix = &masked[line_starts[line - 1]..pos];
    let iterated = in_loop || ITER_MARKERS.iter().any(|m| line_prefix.contains(m));
    let stored = line_prefix.contains("Some(") || line_prefix.contains(".push(");
    Event::Acquire {
        site,
        binding: let_binding(&masked[stmt_start..pos]),
        iterated,
        stored,
        depth,
        line,
    }
}
