//! Call-graph summaries and per-function replay for locklint.
//!
//! Calls are resolved by *name union* through the shared
//! [`crate::callgraph::Graph`]: a call to `flush` is assumed to possibly
//! reach every workspace function named `flush`. That is deliberately
//! conservative — no type information is available — and is what the
//! [`super::DATA_METHODS`] registry exists to counterbalance.

use super::extract::{Event, FileExtract};
use super::{
    BLOCKING_UNDER_LOCK, CLASSES, GUARD_LIFETIME, LOCK_ORDER, LOCK_ORDER_CYCLE, LOCK_SITES,
    MULTI_SHARD_ORDER,
};
use crate::callgraph::{FnKey, Graph};
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// What a function may do, transitively.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Summary {
    /// Lock classes (indices into [`CLASSES`]) the function may acquire.
    may_acquire: BTreeSet<usize>,
    /// Whether the function may reach a blocking operation.
    may_block: bool,
}

/// Findings plus the class-order edge set from one analysis run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Raw findings, before annotation suppression.
    pub findings: Vec<Violation>,
}

/// A guard held during replay of a function body.
struct Held {
    class: usize,
    binding: Option<String>,
    /// Unbound and not stored — released at the end of its statement.
    transient: bool,
    depth: usize,
}

/// Builds the shared name-union graph from locklint's event lists.
fn build_graph(files: &[FileExtract]) -> Graph {
    Graph::build(files.iter().enumerate().flat_map(|(fi, file)| {
        file.fns.iter().enumerate().map(move |(gi, f)| {
            let callees = f
                .events
                .iter()
                .filter_map(|ev| match ev {
                    Event::Call { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect();
            ((fi, gi), f.name.clone(), callees)
        })
    }))
}

/// Runs summaries + replay over all extracted files.
pub fn analyze(files: &[FileExtract]) -> Outcome {
    let graph = build_graph(files);

    // Seed summaries from each function's direct events, then propagate
    // may_acquire / may_block to a fixpoint over the call graph.
    let mut summaries: BTreeMap<FnKey, Summary> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let mut s = Summary::default();
            for ev in &f.events {
                match ev {
                    Event::Acquire { site, .. } => {
                        s.may_acquire.insert(LOCK_SITES[*site].class);
                    }
                    Event::Block { .. } => s.may_block = true,
                    _ => {}
                }
            }
            summaries.insert((fi, gi), s);
        }
    }
    graph.fixpoint(&mut summaries, |s, t| {
        s.may_block |= t.may_block;
        s.may_acquire.extend(t.may_acquire.iter().copied());
    });

    // Replay each function against the summaries.
    let mut findings = Vec::new();
    // (held class → acquired class) edges with one witness site each.
    let mut edges: BTreeMap<(usize, usize), (String, usize)> = BTreeMap::new();

    for file in files.iter() {
        for f in file.fns.iter() {
            let mut held: Vec<Held> = Vec::new();
            for ev in &f.events {
                match ev {
                    Event::Acquire {
                        site,
                        binding,
                        iterated,
                        stored,
                        depth,
                        line,
                    } => {
                        let class = LOCK_SITES[*site].class;
                        let mode = LOCK_SITES[*site].mode;
                        if *stored {
                            findings.push(Violation {
                                rule: GUARD_LIFETIME,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` {} guard in `{}` is stored into an \
                                     Option/collection — guard lifetime escapes its \
                                     lexical scope; keep guards scoped or use the \
                                     canonical helpers",
                                    CLASSES[class].name, mode, f.name
                                ),
                            });
                        }
                        if *iterated && CLASSES[class].multi_instance {
                            findings.push(Violation {
                                rule: MULTI_SHARD_ORDER,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "iterated acquisition of multi-instance class \
                                     `{}` in `{}` — ascending-instance order is not \
                                     statically provable; use the canonical \
                                     `lock_all_read`/`lock_owner_write` helpers or \
                                     annotate the audited site",
                                    CLASSES[class].name, f.name
                                ),
                            });
                        }
                        order_check(
                            &held,
                            class,
                            &file.path,
                            *line,
                            &f.name,
                            "acquires",
                            &mut findings,
                            &mut edges,
                        );
                        held.push(Held {
                            class,
                            binding: binding.clone(),
                            transient: binding.is_none() && !stored,
                            depth: *depth,
                        });
                    }
                    Event::Release { binding } => {
                        if let Some(at) = held
                            .iter()
                            .rposition(|h| h.binding.as_deref() == Some(binding.as_str()))
                        {
                            held.remove(at);
                        }
                    }
                    Event::StatementEnd => held.retain(|h| !h.transient),
                    Event::ScopeEnd { to_depth } => held.retain(|h| h.depth <= *to_depth),
                    Event::Call { name, line } => {
                        if held.is_empty() {
                            continue;
                        }
                        let mut may_block = false;
                        let mut may_acquire = BTreeSet::new();
                        for target in graph.resolve(name) {
                            if let Some(t) = summaries.get(target) {
                                may_block |= t.may_block;
                                may_acquire.extend(t.may_acquire.iter().copied());
                            }
                        }
                        if may_block {
                            findings.push(Violation {
                                rule: BLOCKING_UNDER_LOCK,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` calls `{}`, which may block (fsync/write/\
                                     accept/recv/send/sleep), while holding {}",
                                    f.name,
                                    name,
                                    held_names(&held)
                                ),
                            });
                        }
                        for class in may_acquire {
                            order_check(
                                &held,
                                class,
                                &file.path,
                                *line,
                                &f.name,
                                &format!("calls `{name}`, which may acquire"),
                                &mut findings,
                                &mut edges,
                            );
                        }
                    }
                    Event::Block { desc, line } => {
                        if !held.is_empty() {
                            findings.push(Violation {
                                rule: BLOCKING_UNDER_LOCK,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` performs a blocking operation ({}) while \
                                     holding {}",
                                    f.name,
                                    desc,
                                    held_names(&held)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the aggregated class-order graph. Ranks are
    // totally ordered, so any cycle necessarily contains a descending
    // edge (already reported as lock-order at its site); this finding
    // adds the whole-workspace picture of the deadlock loop.
    findings.extend(find_cycles(&edges));

    Outcome { findings }
}

fn held_names(held: &[Held]) -> String {
    let names: Vec<&str> = held.iter().map(|h| CLASSES[h.class].name).collect();
    format!("`{}`", names.join("`, `"))
}

#[allow(clippy::too_many_arguments)]
fn order_check(
    held: &[Held],
    class: usize,
    path: &str,
    line: usize,
    fn_name: &str,
    verb: &str,
    findings: &mut Vec<Violation>,
    edges: &mut BTreeMap<(usize, usize), (String, usize)>,
) {
    for h in held {
        if h.class != class {
            // Record the order edge either way: descending edges are
            // reported below AND close cycles in the aggregate graph.
            edges
                .entry((h.class, class))
                .or_insert_with(|| (path.to_string(), line));
        }
        if CLASSES[h.class].rank > CLASSES[class].rank {
            findings.push(Violation {
                rule: LOCK_ORDER,
                path: path.to_string(),
                line,
                message: format!(
                    "`{}` {} `{}` (rank {}) while holding `{}` (rank {}) — the \
                     canonical order acquires ascending ranks only (DESIGN.md §5f)",
                    fn_name,
                    verb,
                    CLASSES[class].name,
                    CLASSES[class].rank,
                    CLASSES[h.class].name,
                    CLASSES[h.class].rank
                ),
            });
        } else if h.class == class {
            if CLASSES[class].multi_instance {
                findings.push(Violation {
                    rule: MULTI_SHARD_ORDER,
                    path: path.to_string(),
                    line,
                    message: format!(
                        "`{}` {} `{}` while already holding an instance of it — \
                         per-instance ascending order is not statically provable \
                         outside the canonical helpers",
                        fn_name, verb, CLASSES[class].name
                    ),
                });
            } else {
                findings.push(Violation {
                    rule: LOCK_ORDER,
                    path: path.to_string(),
                    line,
                    message: format!(
                        "`{}` {} non-reentrant `{}` while already holding it — \
                         self-deadlock",
                        fn_name, verb, CLASSES[class].name
                    ),
                });
            }
        }
    }
}

/// DFS cycle search over the class-order graph; one finding per cycle.
fn find_cycles(edges: &BTreeMap<(usize, usize), (String, usize)>) -> Vec<Violation> {
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for &(start, _) in edges.keys() {
        let mut path = vec![start];
        dfs_cycles(start, start, edges, &mut path, &mut reported, &mut findings);
    }
    findings
}

fn dfs_cycles(
    start: usize,
    at: usize,
    edges: &BTreeMap<(usize, usize), (String, usize)>,
    path: &mut Vec<usize>,
    reported: &mut BTreeSet<Vec<usize>>,
    findings: &mut Vec<Violation>,
) {
    for (&(from, to), site) in edges {
        if from != at {
            continue;
        }
        if to == start {
            let mut key = path.clone();
            key.sort_unstable();
            if reported.insert(key) {
                let mut names: Vec<&str> = path.iter().map(|&c| CLASSES[c].name).collect();
                names.push(CLASSES[start].name);
                findings.push(Violation {
                    rule: LOCK_ORDER_CYCLE,
                    path: site.0.clone(),
                    line: site.1,
                    message: format!(
                        "lock-class order cycle: {} — concurrent threads taking \
                         these edges in opposite orders can deadlock",
                        names.join(" -> ")
                    ),
                });
            }
            continue;
        }
        if path.contains(&to) {
            continue;
        }
        path.push(to);
        dfs_cycles(start, to, edges, path, reported, findings);
        path.pop();
    }
}
