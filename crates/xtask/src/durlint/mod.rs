//! `cargo xtask durlint` — crash-consistency protocol static analysis
//! (DESIGN.md §5k).
//!
//! Every durable artifact in the workspace (snapshots, the meta file, the
//! cluster manifest, sealed segments) is published by the same protocol:
//! write to a `*.tmp` staging name, fsync the file, rename over the final
//! name, fsync the directory. Skipping any step is invisible to every
//! test that doesn't cut power — and is exactly the class of bug the
//! paper's recovery guarantees cannot survive. This pass extracts
//! filesystem protocol events per function ([`extract`]) and evaluates
//! ordering rules over the shared name-union call graph
//! ([`crate::callgraph`]):
//!
//! | id                      | finding |
//! |-------------------------|---------|
//! | `rename-no-fsync`       | a rename publishes a file that was written but never fsynced on some path — a crash can expose the name without the bytes |
//! | `rename-no-dirsync`     | a function renames but returns without a directory fsync (or a call that may perform one) — the new entry is not durable |
//! | `ack-before-sync`       | a `durable_seq`-acking entry point (`insert_d`, …) has no path to the WAL sync point (`ensure_durable`) |
//! | `raw-durable-write`     | `File::create(` / `fs::write(` in a durable-state crate (`DURABLE_DIRS`); durable artifacts must go through `ssj_io::fs::atomic_write_durable` or staged tmp + rename |
//! | `unchecked-durable-read`| `fs::read(` / `fs::read_to_string(` of durable state in a function with no integrity verification (`crc32`, `FrameReader`, …) on any path |
//! | `tmp-no-sweep`          | a crate stages `*.tmp` files but no code in it defines or calls a sweep helper (`sweep_tmp_files` / `clean_tmp_files`) — a crash mid-publish leaves litter forever |
//! | `durlint-annotation`    | malformed suppression annotation (unknown rule or empty justification) |
//! | `durlint-scope`         | annotation inside `crates/core` (zero-allowlist policy: core has no business doing file I/O at all) |
//!
//! Deliberate violations are suppressed in-source, next to the code they
//! justify — same grammar as locklint/hotlint:
//!
//! ```text
//! // durlint: allow(tmp-no-sweep): reason…          (this + next line)
//! // durlint: allow(rename-no-dirsync, fn): reason… (whole enclosing fn)
//! ```
//!
//! The static pass is paired with a runtime witness
//! (`ssj_io::fswitness`): the canonical file helpers report every
//! create/write/fsync/rename to a global order tracker that panics (under
//! `debug_assertions` or the `fs-witness` feature) the moment a rename
//! publishes a dirty file or a directory entry is left unsynced — the
//! same two-layer static + runtime design as locklint's lock witness and
//! hotlint's allocation witness.

pub mod extract;

use crate::callgraph::{FnKey, Graph};
use crate::locklint::SCAN_DIRS;
use crate::{rel, rs_files, LintError, Violation};
use extract::{DurEvent, FileExtract};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// Rule id: rename of a file with no fsync since its last write.
pub const RENAME_NO_FSYNC: &str = "rename-no-fsync";
/// Rule id: function renames but never fsyncs the directory.
pub const RENAME_NO_DIRSYNC: &str = "rename-no-dirsync";
/// Rule id: durable-ack entry point with no path to the WAL sync point.
pub const ACK_BEFORE_SYNC: &str = "ack-before-sync";
/// Rule id: raw in-place write in a durable-state crate.
pub const RAW_DURABLE_WRITE: &str = "raw-durable-write";
/// Rule id: durable-state read with no integrity verification.
pub const UNCHECKED_DURABLE_READ: &str = "unchecked-durable-read";
/// Rule id: crate stages `*.tmp` files but never sweeps stale ones.
pub const TMP_NO_SWEEP: &str = "tmp-no-sweep";
/// Rule id: malformed `// durlint: allow(…)` annotation.
pub const ANNOTATION_RULE: &str = "durlint-annotation";
/// Rule id: annotation inside `crates/core` (zero-allowlist policy).
pub const SCOPE_RULE: &str = "durlint-scope";

/// The analysis rules an annotation may suppress.
pub const SUPPRESSIBLE_RULES: [&str; 6] = [
    RENAME_NO_FSYNC,
    RENAME_NO_DIRSYNC,
    ACK_BEFORE_SYNC,
    RAW_DURABLE_WRITE,
    UNCHECKED_DURABLE_READ,
    TMP_NO_SWEEP,
];

/// Canonical composite helpers that perform the whole staged-publish
/// protocol internally. Calls to these are extracted as opaque
/// [`DurEvent::AtomicHelper`] events: they neither dirty nor settle
/// anything in the *caller* (the helper syncs its own file and its own
/// directory, not the caller's).
pub const ATOMIC_HELPER_FNS: [&str; 2] = ["atomic_write_durable", "persist_shipped_snapshot"];

/// Directory-fsync helper names: a call to one settles every rename the
/// calling function has pending.
pub const SYNC_DIR_FNS: [&str; 1] = ["sync_dir"];

/// Stale-staging sweep helper names (defining *or* calling one gives the
/// crate its sweep path for `tmp-no-sweep`).
pub const SWEEP_FNS: [&str; 2] = ["sweep_tmp_files", "clean_tmp_files"];

/// Entry points that acknowledge `durable_seq` to clients. Each must
/// reach the WAL sync point ([`WAL_SYNC_FNS`]) on some call path.
pub const ACK_FNS: [&str; 3] = ["insert_d", "remove_d", "query_insert_d"];

/// The WAL sync point: functions of these names seed `may_reach_sync`.
pub const WAL_SYNC_FNS: [&str; 1] = ["ensure_durable"];

/// Bare verification call names (CRC and single-frame readers).
pub const VERIFY_CALLS: [&str; 2] = ["crc32", "read_single"];

/// Verification type names (any occurrence counts — constructing a
/// framed reader means the bytes go through CRC checking).
pub const VERIFY_TYPES: [&str; 1] = ["FrameReader"];

/// Raw-source markers of a `*.tmp` staging site (string literals are
/// blanked by masking, so these are matched on raw lines — see
/// [`extract::extract_file`]).
pub const TMP_MARKERS: [&str; 2] = [".tmp\"", "with_extension(\"tmp\")"];

/// Crates whose on-disk state must survive a crash: raw writes and
/// unverified reads of durable artifacts are findings here (and only
/// here — `ssj-io` owns the helpers themselves, `ssj-serve` holds no
/// files of its own).
pub const DURABLE_DIRS: [&str; 3] = [
    "crates/store/src",
    "crates/extern/src",
    "crates/cluster/src",
];

/// A finding that an in-source annotation suppressed, kept for reporting
/// (`--json`) so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedFinding {
    /// Rule the annotation suppressed.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The annotation's written justification.
    pub reason: String,
    /// What the finding said.
    pub message: String,
}

/// Everything one `durlint` run produced.
#[derive(Debug, Default)]
pub struct DurlintReport {
    /// Surviving (un-suppressed) findings, sorted by path/line/rule.
    pub findings: Vec<Violation>,
    /// Findings a written annotation suppressed.
    pub suppressed: Vec<SuppressedFinding>,
    /// Files analyzed.
    pub files: usize,
    /// Functions summarized.
    pub functions: usize,
    /// Rename (publish) sites seen across the workspace.
    pub rename_sites: usize,
}

impl DurlintReport {
    /// Machine-readable report (for trend tracking next to locklint's and
    /// hotlint's): findings, suppressions, and scan size.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, v) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            );
        }
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{},\"message\":{}}}",
                json_str(s.rule),
                json_str(&s.path),
                s.line,
                json_str(&s.reason),
                json_str(&s.message)
            );
        }
        let _ = write!(
            out,
            "],\"files\":{},\"functions\":{},\"rename_sites\":{}}}",
            self.files, self.functions, self.rename_sites
        );
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the whole pass over the workspace at `root`.
pub fn run_durlint(root: &Path) -> Result<DurlintReport, LintError> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        for file in rs_files(&abs)? {
            let relpath = rel(root, &file);
            let raw = crate::read(&file)?;
            files.push(extract::extract_file(&relpath, &raw));
        }
    }

    let mut findings = Vec::new();

    // Annotation hygiene: well-formed, justified, and never in core.
    for file in &files {
        for ann in &file.annotations {
            if file.path.starts_with("crates/core/") {
                findings.push(Violation {
                    rule: SCOPE_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: format!(
                        "durlint annotation in ssj-core (suppresses `{}`); core holds \
                         no durable state and must not do file I/O — move the \
                         persistence out of core",
                        ann.rule
                    ),
                });
            }
            if !SUPPRESSIBLE_RULES.contains(&ann.rule.as_str()) {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: format!(
                        "annotation names unknown rule `{}` (expected one of: {})",
                        ann.rule,
                        SUPPRESSIBLE_RULES.join(", ")
                    ),
                });
            }
            if ann.reason.is_empty() {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: "annotation has no written justification after `):` — \
                              suppressions are documentation, not magic"
                        .to_string(),
                });
            }
        }
    }

    let analyzed = analyze(&files);
    let functions = files.iter().map(|f| f.fns.len()).sum();

    // Partition analysis findings into suppressed vs surviving.
    let mut suppressed = Vec::new();
    for finding in analyzed.findings {
        match suppressing_annotation(&files, &finding) {
            Some(reason) => suppressed.push(SuppressedFinding {
                rule: finding.rule,
                path: finding.path,
                line: finding.line,
                reason,
                message: finding.message,
            }),
            None => findings.push(finding),
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings.dedup();
    suppressed.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    suppressed.dedup();

    Ok(DurlintReport {
        findings,
        suppressed,
        files: files.len(),
        functions,
        rename_sites: analyzed.rename_sites,
    })
}

struct Analyzed {
    findings: Vec<Violation>,
    rename_sites: usize,
}

/// Whether `path` lives in a durable-state crate.
fn in_durable_dir(path: &str) -> bool {
    DURABLE_DIRS.iter().any(|d| path.starts_with(d))
}

/// The crate grouping key of a scanned path (`crates/<name>`).
fn crate_of(path: &str) -> &str {
    let mut end = 0;
    for (i, c) in path.char_indices() {
        if c == '/' {
            end += 1;
            if end == 2 {
                return &path[..i];
            }
        }
    }
    path
}

/// Summary propagation + per-function protocol replay.
fn analyze(files: &[FileExtract]) -> Analyzed {
    let graph = Graph::build(files.iter().enumerate().flat_map(|(fi, file)| {
        file.fns.iter().enumerate().map(move |(gi, f)| {
            let callees = f
                .events
                .iter()
                .filter_map(|ev| match ev {
                    DurEvent::Call { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect();
            ((fi, gi), f.name.clone(), callees)
        })
    }));

    // Per-function summaries, propagated callee→caller to a fixpoint:
    //   may_sync_file  — some path through the call fsyncs a file;
    //   may_sync_dir   — some path fsyncs a directory;
    //   may_reach_sync — some path reaches the WAL sync point;
    //   may_verify     — some path runs integrity verification.
    let mut may_sync_file: BTreeMap<FnKey, bool> = BTreeMap::new();
    let mut may_sync_dir: BTreeMap<FnKey, bool> = BTreeMap::new();
    let mut may_reach_sync: BTreeMap<FnKey, bool> = BTreeMap::new();
    let mut may_verify: BTreeMap<FnKey, bool> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let key = (fi, gi);
            let mut sync_file = false;
            let mut sync_dir = false;
            let mut verify = false;
            for ev in &f.events {
                match ev {
                    DurEvent::SyncFile { .. } => sync_file = true,
                    DurEvent::SyncDir { .. } => sync_dir = true,
                    DurEvent::Verify { .. } => verify = true,
                    _ => {}
                }
            }
            may_sync_file.insert(key, sync_file);
            may_sync_dir.insert(key, sync_dir || SYNC_DIR_FNS.contains(&f.name.as_str()));
            may_reach_sync.insert(key, WAL_SYNC_FNS.contains(&f.name.as_str()));
            may_verify.insert(key, verify);
        }
    }
    graph.fixpoint(&mut may_sync_file, |s, t| *s |= *t);
    graph.fixpoint(&mut may_sync_dir, |s, t| *s |= *t);
    graph.fixpoint(&mut may_reach_sync, |s, t| *s |= *t);
    graph.fixpoint(&mut may_verify, |s, t| *s |= *t);

    let mut findings = Vec::new();
    let mut rename_sites = 0usize;

    for (fi, file) in files.iter().enumerate() {
        let durable = in_durable_dir(&file.path);
        for (gi, f) in file.fns.iter().enumerate() {
            // Linear protocol replay over the body's event order: track
            // whether the staged file is dirty (written since the last
            // fsync on any path) and which renames still owe a directory
            // fsync when the function returns.
            let mut dirty = false;
            let mut pending_renames: Vec<usize> = Vec::new();
            for ev in &f.events {
                match ev {
                    DurEvent::Create { what, line } => {
                        dirty = true;
                        if durable {
                            findings.push(Violation {
                                rule: RAW_DURABLE_WRITE,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` writes durable state in place in `{}`; use \
                                     `ssj_io::fs::atomic_write_durable` (or staged \
                                     tmp + fsync + rename + dir fsync) so a crash \
                                     never leaves a torn artifact",
                                    what, f.name
                                ),
                            });
                        }
                    }
                    DurEvent::WriteBytes { .. } => dirty = true,
                    DurEvent::SyncFile { .. } => dirty = false,
                    DurEvent::Rename { line } => {
                        rename_sites += 1;
                        if dirty {
                            findings.push(Violation {
                                rule: RENAME_NO_FSYNC,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` renames a file written since its last fsync \
                                     on some path; a crash can publish the name \
                                     before the bytes — fsync the file first",
                                    f.name
                                ),
                            });
                        }
                        dirty = false;
                        pending_renames.push(*line);
                    }
                    DurEvent::SyncDir { .. } => pending_renames.clear(),
                    DurEvent::ReadBytes { what, line } => {
                        if durable && !may_verify.get(&(fi, gi)).copied().unwrap_or(false) {
                            findings.push(Violation {
                                rule: UNCHECKED_DURABLE_READ,
                                path: file.path.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` reads durable state (`{}`) with no integrity \
                                     verification on any path; recovery must treat \
                                     on-disk bytes as untrusted (CRC-framed decode)",
                                    f.name, what
                                ),
                            });
                        }
                    }
                    // Opaque: the helper syncs its own file and its own
                    // directory; the caller's obligations are untouched.
                    DurEvent::AtomicHelper { .. } => {}
                    DurEvent::Verify { .. } => {}
                    DurEvent::Call { name, .. } => {
                        let targets = graph.resolve(name);
                        if targets
                            .iter()
                            .any(|t| may_sync_file.get(t).copied().unwrap_or(false))
                        {
                            dirty = false;
                        }
                        if targets
                            .iter()
                            .any(|t| may_sync_dir.get(t).copied().unwrap_or(false))
                        {
                            pending_renames.clear();
                        }
                    }
                }
            }
            for line in pending_renames {
                findings.push(Violation {
                    rule: RENAME_NO_DIRSYNC,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{}` renames but returns without a directory fsync on any \
                         path; the new directory entry is not durable — call \
                         `ssj_io::fs::sync_dir` after the rename",
                        f.name
                    ),
                });
            }

            // Ack entry points must reach the WAL sync point somewhere.
            if ACK_FNS.contains(&f.name.as_str())
                && !may_reach_sync.get(&(fi, gi)).copied().unwrap_or(false)
            {
                findings.push(Violation {
                    rule: ACK_BEFORE_SYNC,
                    path: file.path.clone(),
                    line: f.start_line,
                    message: format!(
                        "`{}` acknowledges durable_seq to clients but has no call \
                         path to the WAL sync point ({}); an ack the WAL hasn't \
                         fsynced is a lie after a crash",
                        f.name,
                        WAL_SYNC_FNS.join("/")
                    ),
                });
            }
        }
    }

    // tmp-no-sweep: per crate, staging sites require a sweep path.
    let mut crate_tmp: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut crate_sweeps: BTreeSet<&str> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        let krate = crate_of(&file.path);
        for &line in &file.tmp_lines {
            crate_tmp.entry(krate).or_default().push((fi, line));
        }
        let sweeps = file.fns.iter().any(|f| {
            SWEEP_FNS.contains(&f.name.as_str())
                || f.events.iter().any(|ev| {
                    matches!(ev, DurEvent::Call { name, .. } if SWEEP_FNS.contains(&name.as_str()))
                })
        });
        if sweeps {
            crate_sweeps.insert(krate);
        }
    }
    for (krate, sites) in crate_tmp {
        if crate_sweeps.contains(krate) {
            continue;
        }
        for (fi, line) in sites {
            findings.push(Violation {
                rule: TMP_NO_SWEEP,
                path: files[fi].path.clone(),
                line,
                message: format!(
                    "`{}` stages `*.tmp` files but nothing in the crate defines or \
                     calls a sweep helper ({}); a crash between create and rename \
                     leaves litter that no recovery path ever removes",
                    krate,
                    SWEEP_FNS.join("/")
                ),
            });
        }
    }

    Analyzed {
        findings,
        rename_sites,
    }
}

/// The justification of the annotation that suppresses `finding`, if any.
///
/// A line-level annotation covers its own line and the next; an fn-level
/// annotation covers every line of the function whose body contains it.
fn suppressing_annotation(files: &[FileExtract], finding: &Violation) -> Option<String> {
    let file = files.iter().find(|f| f.path == finding.path)?;
    for ann in &file.annotations {
        if ann.rule != finding.rule || ann.reason.is_empty() {
            continue;
        }
        let covered = if ann.fn_level {
            file.fns
                .iter()
                .any(|f| f.contains_line(ann.line) && f.contains_line(finding.line))
        } else {
            finding.line == ann.line || finding.line == ann.line + 1
        };
        if covered {
            return Some(ann.reason.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(path: &str, src: &str) -> Vec<Violation> {
        let files = vec![extract::extract_file(path, src)];
        analyze(&files).findings
    }

    #[test]
    fn clean_protocol_has_no_findings() {
        let src = "\
fn publish(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staged(path);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap())
}
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}
";
        // Outside DURABLE_DIRS so the File::create staging write is legal.
        let f = findings_of("crates/io/src/lib.rs", src);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn rename_of_unsynced_file_is_flagged() {
        let src = "\
fn publish(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}
fn sync_dir(dir: &Path) -> io::Result<()> { File::open(dir)?.sync_all() }
";
        let f = findings_of("crates/io/src/lib.rs", src);
        assert!(
            f.iter().any(|v| v.rule == RENAME_NO_FSYNC && v.line == 4),
            "{f:#?}"
        );
    }

    #[test]
    fn rename_without_dir_sync_is_flagged_and_interprocedural_sync_clears() {
        let src = "\
fn leaky(path: &Path) -> io::Result<()> {
    fs::rename(&tmp, path)
}
fn covered(path: &Path) -> io::Result<()> {
    fs::rename(&tmp, path)?;
    settle(path)
}
fn settle(path: &Path) -> io::Result<()> {
    sync_dir(path.parent().unwrap())
}
fn sync_dir(dir: &Path) -> io::Result<()> { File::open(dir)?.sync_all() }
";
        let f = findings_of("crates/io/src/lib.rs", src);
        assert!(
            f.iter().any(|v| v.rule == RENAME_NO_DIRSYNC && v.line == 2),
            "{f:#?}"
        );
        assert!(
            !f.iter().any(|v| v.rule == RENAME_NO_DIRSYNC && v.line == 5),
            "settle() may sync the directory — must clear the obligation: {f:#?}"
        );
    }

    #[test]
    fn atomic_helper_calls_are_opaque() {
        // The helper neither settles the caller's dirty file (it syncs its
        // *own* file) nor creates obligations.
        let src = "\
fn publish(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    atomic_write_durable(&other, bytes)?;
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}
fn sync_dir(dir: &Path) -> io::Result<()> { File::open(dir)?.sync_all() }
";
        let f = findings_of("crates/io/src/lib.rs", src);
        assert!(
            f.iter().any(|v| v.rule == RENAME_NO_FSYNC && v.line == 5),
            "{f:#?}"
        );
    }

    #[test]
    fn ack_entry_point_must_reach_wal_sync() {
        let src = "\
fn insert_d(&self, elems: Vec<u32>) -> u64 {
    self.apply(elems)
}
fn remove_d(&self, id: u64) -> bool {
    self.settle(id)
}
fn settle(&self, id: u64) -> bool {
    self.store.ensure_durable(id);
    true
}
fn ensure_durable(&self, seq: u64) {}
";
        let f = findings_of("crates/server/src/service.rs", src);
        assert!(
            f.iter().any(|v| v.rule == ACK_BEFORE_SYNC && v.line == 1),
            "insert_d never reaches ensure_durable: {f:#?}"
        );
        assert!(
            !f.iter().any(|v| v.rule == ACK_BEFORE_SYNC && v.line == 4),
            "remove_d reaches it through settle: {f:#?}"
        );
    }

    #[test]
    fn durable_dir_raw_writes_and_unverified_reads_are_flagged() {
        let src = "\
fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    fs::write(path, bytes)
}
fn load(path: &Path) -> io::Result<Vec<u8>> {
    fs::read(path)
}
fn load_checked(path: &Path) -> io::Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    let _ = crc32(&bytes);
    Ok(bytes)
}
";
        let f = findings_of("crates/store/src/lib.rs", src);
        assert!(
            f.iter().any(|v| v.rule == RAW_DURABLE_WRITE && v.line == 2),
            "{f:#?}"
        );
        assert!(
            f.iter()
                .any(|v| v.rule == UNCHECKED_DURABLE_READ && v.line == 5),
            "{f:#?}"
        );
        assert!(
            !f.iter()
                .any(|v| v.rule == UNCHECKED_DURABLE_READ && v.line == 8),
            "crc32 verifies the read: {f:#?}"
        );
    }

    #[test]
    fn tmp_staging_without_sweep_is_flagged_per_crate() {
        let leaky = "\
fn stage(dir: &Path) -> PathBuf {
    dir.join(\"seg.tmp\")
}
";
        let swept = "\
fn stage(dir: &Path) -> PathBuf {
    dir.join(\"seg.tmp\")
}
fn recover(dir: &Path) {
    let _ = sweep_tmp_files(dir);
}
";
        let f = findings_of("crates/extern/src/segment.rs", leaky);
        assert!(
            f.iter().any(|v| v.rule == TMP_NO_SWEEP && v.line == 2),
            "{f:#?}"
        );
        let f = findings_of("crates/extern/src/segment.rs", swept);
        assert!(!f.iter().any(|v| v.rule == TMP_NO_SWEEP), "{f:#?}");
    }

    #[test]
    fn comments_and_test_code_never_stage_tmp_files() {
        let src = "\
// a doc note mentioning \"meta.tmp\" litter
fn nothing() {}
#[cfg(test)]
mod tests {
    fn t(dir: &Path) -> PathBuf { dir.join(\"x.tmp\") }
}
";
        let f = findings_of("crates/extern/src/lib.rs", src);
        assert!(f.is_empty(), "{f:#?}");
    }
}
