//! Source → per-function filesystem-event lists for the durlint pass.
//!
//! Mirrors `hotlint::extract`, on the same masked source and the shared
//! structural machinery in [`crate::callgraph`], but scans for the
//! durability vocabulary: file creation (`File::create(`, `fs::write(`),
//! raw writes (`.write_all(`), file fsyncs (`.sync_all(`, `.sync_data(`),
//! renames (`fs::rename(`), directory fsyncs (calls to `sync_dir`-shaped
//! helpers), durable reads (`fs::read(`, `fs::read_to_string(`),
//! integrity verification (`crc32(`, `FrameReader`, `.next_frame(`,
//! `read_single(`), and calls for interprocedural propagation.
//!
//! Calls to the canonical composite helpers ([`super::ATOMIC_HELPER_FNS`])
//! are extracted as opaque [`DurEvent::AtomicHelper`] events, *not* as
//! calls: the helper performs the whole tmp → fsync → rename → dir-fsync
//! protocol internally, so the call site neither creates nor satisfies any
//! ordering obligation. (If they were ordinary calls, name-union
//! resolution of the helper's internal `sync_all` would spuriously settle
//! unrelated dirty files in the caller.)
//!
//! `*.tmp` staging markers are scanned on the **raw** source, because
//! [`mask_non_code`] blanks string contents — a masked line cannot contain
//! `.tmp"` at all. Each raw hit is gated on the masked, test-stripped line
//! at the same index being non-blank, so comments, doc text, and `#[cfg
//! (test)]` code never produce staging sites.

use super::{ATOMIC_HELPER_FNS, SWEEP_FNS, SYNC_DIR_FNS, TMP_MARKERS, VERIFY_CALLS, VERIFY_TYPES};
use crate::callgraph::{
    fn_spans, is_ident, line_of, line_start_offsets, nested_ranges, parse_annotations, FnSpan,
    KEYWORDS,
};
use crate::hotlint::{is_ctor_name, CALL_CUT};
use crate::scan::{mask_non_code, strip_test_regions};

pub use crate::callgraph::Annotation;

/// One filesystem-protocol occurrence inside a function body.
#[derive(Debug, Clone)]
pub enum DurEvent {
    /// A file-creating write site (`File::create(`, `fs::write(`).
    Create {
        /// What created (e.g. `File::create`).
        what: String,
        /// 1-based source line.
        line: usize,
    },
    /// A raw byte write (`.write_all(`) — marks the file dirty.
    WriteBytes {
        /// 1-based source line.
        line: usize,
    },
    /// A file fsync (`.sync_all(` / `.sync_data(`).
    SyncFile {
        /// 1-based source line.
        line: usize,
    },
    /// A rename (`fs::rename(`) — publishes a name.
    Rename {
        /// 1-based source line.
        line: usize,
    },
    /// A directory fsync (a call to a [`SYNC_DIR_FNS`] helper).
    SyncDir {
        /// 1-based source line.
        line: usize,
    },
    /// A durable-state read (`fs::read(` / `fs::read_to_string(`).
    ReadBytes {
        /// What read (e.g. `fs::read`).
        what: String,
        /// 1-based source line.
        line: usize,
    },
    /// An integrity-verification token (`crc32(`, `FrameReader`, …).
    Verify {
        /// 1-based source line.
        line: usize,
    },
    /// A call to a canonical composite helper ([`ATOMIC_HELPER_FNS`]) —
    /// opaque: performs the whole protocol, creates/satisfies nothing in
    /// the caller.
    AtomicHelper {
        /// The helper called.
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// A call to a (possible) workspace function, for propagation.
    Call {
        /// Callee name as written.
        name: String,
        /// 1-based source line.
        line: usize,
    },
}

/// A function found in a file, with its extracted event list.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name as written after `fn`.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based first and last line of the body (inclusive).
    pub body_lines: (usize, usize),
    /// Events extracted from the body (nested fns excluded), in source
    /// order — the per-function replay in `analyze` depends on the order.
    pub events: Vec<DurEvent>,
}

impl FnInfo {
    /// Whether `line` falls inside this function (signature or body).
    pub fn contains_line(&self, line: usize) -> bool {
        line >= self.start_line && line <= self.body_lines.1
    }
}

/// Extraction result for one file.
#[derive(Debug)]
pub struct FileExtract {
    /// Repo-relative path.
    pub path: String,
    /// Functions with their event lists.
    pub fns: Vec<FnInfo>,
    /// 1-based lines with a `*.tmp` staging marker (raw-source scan,
    /// gated on non-test, non-comment code at the same line).
    pub tmp_lines: Vec<usize>,
    /// Suppression annotations (from raw comment lines).
    pub annotations: Vec<Annotation>,
}

/// Masks `raw`, finds functions, and extracts events + annotations.
pub fn extract_file(relpath: &str, raw: &str) -> FileExtract {
    let masked = strip_test_regions(&mask_non_code(raw));
    let line_starts = line_start_offsets(&masked);
    let spans = fn_spans(&masked);

    let fns = spans
        .iter()
        .enumerate()
        .map(|(i, span)| {
            let nested = nested_ranges(&spans, i);
            FnInfo {
                name: span.name.clone(),
                start_line: line_of(&line_starts, span.kw_pos),
                body_lines: (
                    line_of(&line_starts, span.body_start),
                    line_of(&line_starts, span.body_end.saturating_sub(1)),
                ),
                events: scan_events(&masked, span, &nested, &line_starts),
            }
        })
        .collect();

    // `*.tmp` staging markers live inside string literals, which masking
    // blanks — scan raw lines, gated on real (masked, test-stripped) code
    // existing at the same line.
    let tmp_lines = raw
        .lines()
        .zip(masked.lines())
        .enumerate()
        .filter(|(_, (raw_line, masked_line))| {
            !masked_line.trim().is_empty() && TMP_MARKERS.iter().any(|m| raw_line.contains(m))
        })
        .map(|(idx, _)| idx + 1)
        .collect();

    FileExtract {
        path: relpath.to_string(),
        fns,
        tmp_lines,
        annotations: parse_annotations(raw, "durlint"),
    }
}

/// Method-chain tokens that fsync a file.
const SYNC_FILE_CHAINS: [&str; 2] = [".sync_all(", ".sync_data("];

/// Method-chain tokens that write raw bytes (dirty the file).
const WRITE_CHAINS: [&str; 2] = [".write_all(", ".write_vectored("];

/// Method-chain tokens that verify framed/checksummed input.
const VERIFY_CHAINS: [&str; 1] = [".next_frame("];

/// Dotted method names cut from call resolution *in addition to*
/// hotlint's [`CALL_CUT`]: `OpenOptions::new()…​.open(` and
/// `BufWriter::flush()` would otherwise resolve onto `Store::open` /
/// `Store::flush` by name union and import their sync summaries into
/// unrelated callers.
const DUR_CALL_CUT: [&str; 2] = ["open", "flush"];

fn scan_events(
    masked: &str,
    span: &FnSpan,
    skip: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<DurEvent> {
    let bytes = masked.as_bytes();
    let mut events = Vec::new();
    let mut i = span.body_start + 1;
    let end = span.body_end.saturating_sub(1);

    while i < end {
        if let Some(&(_, skip_end)) = skip.iter().find(|&&(s, e)| i >= s && i < e) {
            i = skip_end;
            continue;
        }
        let b = bytes[i];
        match b {
            b'.' => {
                let rest = &masked[i..end];
                let line = line_of(line_starts, i);
                if let Some(pat) = SYNC_FILE_CHAINS.iter().find(|p| rest.starts_with(**p)) {
                    events.push(DurEvent::SyncFile { line });
                    i += pat.len();
                } else if let Some(pat) = WRITE_CHAINS.iter().find(|p| rest.starts_with(**p)) {
                    events.push(DurEvent::WriteBytes { line });
                    i += pat.len();
                } else if let Some(pat) = VERIFY_CHAINS.iter().find(|p| rest.starts_with(**p)) {
                    events.push(DurEvent::Verify { line });
                    i += pat.len();
                } else {
                    i += 1;
                }
            }
            _ if is_ident(b) && !b.is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) => {
                let word_start = i;
                let mut j = i;
                while j < end && is_ident(bytes[j]) {
                    j += 1;
                }
                let word = &masked[word_start..j];
                if KEYWORDS.contains(&word) {
                    i = j;
                    continue;
                }
                let line = line_of(line_starts, word_start);
                let after = &masked[j..end];
                // `fs::rename(` / `fs::write(` / `fs::read(` / `File::create(`
                // — matched at the path segment, so `std::fs::rename(` works
                // too (the scanner also lands on the inner `fs` word). The
                // whole `::name` suffix is consumed either way, so neither
                // `fs::create_dir_all(` nor `File::open(` leaves a stray
                // bare-call event behind; `ssj_io::fs::sync_dir(` and
                // `ssj_io::fs::sweep_tmp_files(` keep their meaning.
                if word == "fs" || word == "File" {
                    if let Some(name) = path_call(after) {
                        match name {
                            "create" if word == "File" => events.push(DurEvent::Create {
                                what: "File::create".to_string(),
                                line,
                            }),
                            "rename" if word == "fs" => events.push(DurEvent::Rename { line }),
                            "write" if word == "fs" => events.push(DurEvent::Create {
                                what: "fs::write".to_string(),
                                line,
                            }),
                            "read" | "read_to_string" if word == "fs" => {
                                events.push(DurEvent::ReadBytes {
                                    what: format!("fs::{name}"),
                                    line,
                                })
                            }
                            _ if ATOMIC_HELPER_FNS.contains(&name) => {
                                events.push(DurEvent::AtomicHelper {
                                    name: name.to_string(),
                                    line,
                                })
                            }
                            _ if SYNC_DIR_FNS.contains(&name) => {
                                events.push(DurEvent::SyncDir { line })
                            }
                            _ if SWEEP_FNS.contains(&name) => events.push(DurEvent::Call {
                                name: name.to_string(),
                                line,
                            }),
                            _ => {}
                        }
                        i = j + 2 + name.len();
                        continue;
                    }
                }
                // Framed-reader construction anywhere in the body counts
                // as verification (`FrameReader::new(bytes)`).
                if VERIFY_TYPES.contains(&word) {
                    events.push(DurEvent::Verify { line });
                    i = j;
                    continue;
                }
                // Next non-whitespace byte decides what this ident is.
                let mut k = j;
                while k < end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let next = if k < end { bytes[k] } else { 0 };
                if next != b'(' {
                    i = j;
                    continue;
                }
                if ATOMIC_HELPER_FNS.contains(&word) {
                    events.push(DurEvent::AtomicHelper {
                        name: word.to_string(),
                        line,
                    });
                    i = j;
                    continue;
                }
                if SYNC_DIR_FNS.contains(&word) {
                    events.push(DurEvent::SyncDir { line });
                    i = j;
                    continue;
                }
                if VERIFY_CALLS.contains(&word) {
                    events.push(DurEvent::Verify { line });
                    i = j;
                    continue;
                }
                let dotted = word_start > 0 && bytes[word_start - 1] == b'.';
                if dotted && (CALL_CUT.contains(&word) || DUR_CALL_CUT.contains(&word)) {
                    i = j;
                    continue;
                }
                if is_ctor_name(word) || word.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Constructor convention / type path — the name-union
                    // resolver would spread durability summaries across
                    // every workspace constructor (same cut as hotlint).
                    i = j;
                    continue;
                }
                events.push(DurEvent::Call {
                    name: word.to_string(),
                    line,
                });
                i = j;
            }
            _ => i += 1,
        }
    }
    events
}

/// If `after` (text following a path segment) is `::name(`, the name.
fn path_call(after: &str) -> Option<&str> {
    let rest = after.strip_prefix("::")?;
    let end = rest
        .bytes()
        .position(|b| !is_ident(b))
        .unwrap_or(rest.len());
    if end == 0 || !rest[end..].starts_with('(') {
        return None;
    }
    Some(&rest[..end])
}
