//! The per-rule suppression file `crates/xtask/lint_allow.toml`.
//!
//! A deliberately tiny TOML subset — `[[allow]]` tables of string
//! key/values — parsed by hand so the xtask crate stays dependency-free:
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic"
//! path = "crates/cli/src/**"
//! reason = "binary crates may abort at the top level"
//! ```
//!
//! `path` is a glob over repo-relative paths: `*` matches within one path
//! segment, `**` matches across segments. Every entry must carry a
//! non-empty `reason` — suppressions are documentation, not magic.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (e.g. `no-panic`).
    pub rule: String,
    /// Repo-relative path glob.
    pub path: String,
    /// Human rationale; required.
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint_allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the TOML-subset allowlist format.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(usize, AllowEntry)> = None;

        fn finish(
            entries: &mut Vec<AllowEntry>,
            current: Option<(usize, AllowEntry)>,
        ) -> Result<(), ParseError> {
            if let Some((line, entry)) = current {
                if entry.rule.is_empty() || entry.path.is_empty() {
                    return Err(ParseError {
                        line,
                        message: "entry needs both `rule` and `path`".to_string(),
                    });
                }
                if entry.reason.is_empty() {
                    return Err(ParseError {
                        line,
                        message: "entry needs a non-empty `reason`".to_string(),
                    });
                }
                entries.push(entry);
            }
            Ok(())
        }

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut entries, current.take())?;
                current = Some((
                    lineno,
                    AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        reason: String::new(),
                    },
                ));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("value for `{key}` must be a double-quoted string"),
                });
            };
            let Some((_, entry)) = current.as_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key/value outside an [[allow]] table".to_string(),
                });
            };
            match key {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.to_string(),
                "reason" => entry.reason = value.to_string(),
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected rule/path/reason)"),
                    });
                }
            }
        }
        finish(&mut entries, current)?;
        Ok(Self { entries })
    }

    /// Does any entry suppress `rule` at `path`?
    pub fn permits(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && glob_match(&e.path, path))
    }
}

/// Glob matcher: `*` matches any run of non-`/` characters, `**` matches
/// anything (including `/`), everything else is literal.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn inner(pat: &[u8], s: &[u8]) -> bool {
        match pat {
            [] => s.is_empty(),
            [b'*', b'*', rest @ ..] => {
                // `**` may swallow any suffix prefix of `s`.
                let rest = rest.strip_prefix(b"/").unwrap_or(rest);
                (0..=s.len()).any(|i| inner(rest, &s[i..]))
            }
            [b'*', rest @ ..] => (0..=s.len())
                .take_while(|&i| i == 0 || s[i - 1] != b'/')
                .any(|i| inner(rest, &s[i..])),
            [p, rest @ ..] => s.first() == Some(p) && inner(rest, &s[1..]),
        }
    }
    inner(pattern.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_blank_lines() {
        let text = "# header comment\n\n[[allow]]\nrule = \"no-panic\"\npath = \"crates/cli/src/**\"\nreason = \"cli\"\n\n[[allow]]\nrule = \"default-hasher\"\npath = \"crates/bench/src/*.rs\"\nreason = \"bench\"\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].rule, "no-panic");
        assert_eq!(a.entries[1].path, "crates/bench/src/*.rs");
    }

    #[test]
    fn rejects_entry_without_reason() {
        let text = "[[allow]]\nrule = \"no-panic\"\npath = \"x\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn rejects_stray_keys_and_bad_values() {
        assert!(Allowlist::parse("rule = \"x\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\nrule = unquoted\n").is_err());
        assert!(Allowlist::parse("[[allow]]\nbogus = \"x\"\n").is_err());
    }

    #[test]
    fn permits_matches_rule_and_glob() {
        let a = Allowlist::parse(
            "[[allow]]\nrule = \"no-panic\"\npath = \"crates/cli/src/**\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert!(a.permits("no-panic", "crates/cli/src/main.rs"));
        assert!(a.permits("no-panic", "crates/cli/src/sub/deep.rs"));
        assert!(!a.permits("no-panic", "crates/core/src/join.rs"));
        assert!(!a.permits("default-hasher", "crates/cli/src/main.rs"));
    }

    #[test]
    fn glob_star_does_not_cross_segments() {
        assert!(glob_match("crates/*/src/lib.rs", "crates/core/src/lib.rs"));
        assert!(!glob_match("crates/*/lib.rs", "crates/core/src/lib.rs"));
        assert!(glob_match("crates/**/lib.rs", "crates/core/src/lib.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("a/*.rs", "a/b.rs"));
        assert!(!glob_match("a/*.rs", "a/b/c.rs"));
    }
}
