//! Scheme runners and the naive ground-truth comparison.
//!
//! Every scheme run is wrapped in `catch_unwind`: a panic anywhere in the
//! join pipeline (including the debug-build completeness invariants and
//! worker threads) is reported as a divergence, not a harness crash.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use ssj_baselines::{IdentityScheme, LshJaccard, NaiveJoin, PrefixFilter, PrefixFilterConfig};
use ssj_core::join::{self_join, JoinOptions};
use ssj_core::partenum::{GeneralPartEnum, PartEnumHamming, PartEnumJaccard, PartEnumParams};
use ssj_core::predicate::Predicate;
use ssj_core::set::SetCollection;
use ssj_core::signature::SignatureScheme;
use ssj_core::wtenum::{WtEnum, WtEnumJaccard};
use ssj_datagen::AdversarialWorkload;
use ssj_serve::config::ServerConfig;
use ssj_serve::net::serve_connection;
use ssj_serve::service::Server;

use super::SchemeKind;

/// A scheme's verified pair set, or the panic message that killed the run.
pub type RunResult = Result<Vec<(u32, u32)>, String>;

/// The predicate a scheme kind is tested under for workload `w`.
pub fn predicate_of(kind: SchemeKind, w: &AdversarialWorkload) -> Predicate {
    match kind {
        SchemeKind::PeHamming => Predicate::Hamming { k: w.hamming_k },
        SchemeKind::PeJaccard
        | SchemeKind::GeneralJaccard
        | SchemeKind::Prefix
        | SchemeKind::Identity
        | SchemeKind::Lsh
        | SchemeKind::Serve
        | SchemeKind::Extern
        | SchemeKind::Cluster => Predicate::Jaccard { gamma: w.gamma },
        SchemeKind::GeneralMaxFraction => Predicate::MaxFraction { gamma: w.gamma },
        SchemeKind::WtEnum => Predicate::WeightedOverlap { t: w.weighted_t },
        SchemeKind::WtEnumJaccard => Predicate::WeightedJaccard { gamma: w.gamma_w },
    }
}

/// Whether `kind` needs the workload's weight map.
fn weighted(kind: SchemeKind) -> bool {
    matches!(kind, SchemeKind::WtEnum | SchemeKind::WtEnumJaccard)
}

/// Ground truth: the naive O(n²) join under `kind`'s predicate.
pub fn oracle_pairs(kind: SchemeKind, w: &AdversarialWorkload) -> Vec<(u32, u32)> {
    let collection = w.collection();
    let weights = weighted(kind).then(|| w.weight_map());
    NaiveJoin::self_join(&collection, predicate_of(kind, w), weights.as_ref())
}

/// Runs `kind` on workload `w` with `threads` workers, catching panics.
pub fn scheme_pairs(kind: SchemeKind, w: &AdversarialWorkload, threads: usize) -> RunResult {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| run_scheme(kind, w, threads)));
    match outcome {
        Ok(res) => res,
        // `&*payload` derefs the box: `&payload` would unsize the `Box`
        // itself into `dyn Any` and every downcast would miss.
        Err(payload) => Err(format!("panic: {}", payload_message(&*payload))),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(inner) = payload.downcast_ref::<Box<dyn std::any::Any + Send>>() {
        payload_message(&**inner)
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs an exact driver scheme twice — bitmap-filtered verification on
/// (the default) and off — and demands byte-identical pair sets before
/// returning either. The filter is a pure rejection fast path, so any
/// divergence is a soundness bug in the bitmap bound, reported like any
/// other oracle mismatch. Weighted predicates skip the filter inside the
/// driver; the double run is skipped there to avoid paying twice for a
/// comparison of two identical exact paths.
fn driver_pairs<S: SignatureScheme>(
    scheme: &S,
    collection: &SetCollection,
    pred: Predicate,
    weights: Option<&ssj_core::set::WeightMap>,
    opts: JoinOptions,
) -> RunResult {
    let on = self_join(scheme, collection, pred, weights, opts);
    if pred.is_weighted() {
        return Ok(on.pairs);
    }
    let off = self_join(
        scheme,
        collection,
        pred,
        weights,
        opts.with_bitmap_filter(false),
    );
    if on.pairs != off.pairs {
        return Err(format!(
            "bitmap filter changed the output: {} pair(s) with the filter \
             ({} pruned, {} survivors) vs {} without",
            on.pairs.len(),
            on.stats.bitmap_pruned,
            on.stats.bitmap_survivors,
            off.pairs.len()
        ));
    }
    Ok(on.pairs)
}

fn run_scheme(kind: SchemeKind, w: &AdversarialWorkload, threads: usize) -> RunResult {
    let collection = w.collection();
    let pred = predicate_of(kind, w);
    let opts = JoinOptions::parallel(threads);
    let max_len = w.max_set_len();
    let seed = w.seed ^ 0xd1ff;
    match kind {
        SchemeKind::PeHamming => {
            let params = PartEnumParams::candidates(w.hamming_k, 1 << 16)
                .into_iter()
                .next()
                .ok_or_else(|| format!("no valid params for k = {}", w.hamming_k))?;
            let scheme = PartEnumHamming::new(w.hamming_k, params, seed)
                .map_err(|e| format!("construction failed: {e}"))?;
            driver_pairs(&scheme, &collection, pred, None, opts)
        }
        SchemeKind::PeJaccard => {
            let scheme = PartEnumJaccard::new(w.gamma, max_len, seed)
                .map_err(|e| format!("construction failed: {e}"))?;
            driver_pairs(&scheme, &collection, pred, None, opts)
        }
        SchemeKind::GeneralJaccard | SchemeKind::GeneralMaxFraction => {
            let scheme = GeneralPartEnum::new(pred, max_len, seed)
                .map_err(|e| format!("construction failed: {e}"))?;
            driver_pairs(&scheme, &collection, pred, None, opts)
        }
        SchemeKind::WtEnum => {
            let weights = Arc::new(w.weight_map());
            let th = WtEnum::recommended_th(collection.len());
            let scheme = WtEnum::new(w.weighted_t, th, weights.clone());
            Ok(self_join(&scheme, &collection, pred, Some(&weights), opts).pairs)
        }
        SchemeKind::WtEnumJaccard => {
            let weights = Arc::new(w.weight_map());
            let max_weight = (0..collection.len())
                .map(|i| weights.set_weight(collection.set(i as u32)))
                .fold(1.0f64, f64::max);
            let th = WtEnum::recommended_th(collection.len());
            let scheme = WtEnumJaccard::new(w.gamma_w, max_weight, th, weights.clone());
            Ok(self_join(&scheme, &collection, pred, Some(&weights), opts).pairs)
        }
        SchemeKind::Prefix => {
            let scheme =
                PrefixFilter::build(pred, &[&collection], None, PrefixFilterConfig::default())
                    .map_err(|e| format!("construction failed: {e}"))?;
            driver_pairs(&scheme, &collection, pred, None, opts)
        }
        SchemeKind::Identity => driver_pairs(&IdentityScheme, &collection, pred, None, opts),
        SchemeKind::Lsh => Ok(lsh_pairs(w, &collection, pred, seed)),
        SchemeKind::Serve => serve_pairs(w, threads),
        SchemeKind::Extern => extern_pairs(w, &collection, pred, seed),
        SchemeKind::Cluster => cluster_pairs(w, &collection),
    }
}

/// Node counts the cluster run is forced through: the minimal cluster, an
/// odd count, and one that leaves the consistent-hash ring visibly uneven.
const CLUSTER_NODE_SWEEP: [usize; 3] = [2, 3, 5];

/// The multi-node path: inserts and queries every set through the
/// scatter-gather router over a simulated cluster at every node count in
/// [`CLUSTER_NODE_SWEEP`]. Node count is semantically invisible (placement
/// moves sets around, the join result is content-determined), so all runs
/// must return the identical pair set; each run additionally checks that
/// the folded [`ssj_cluster::ClusterSeq`] accounts for every acked write.
fn cluster_pairs(w: &AdversarialWorkload, collection: &SetCollection) -> RunResult {
    let mut agreed: Option<(usize, Vec<(u32, u32)>)> = None;
    for nodes in CLUSTER_NODE_SWEEP {
        let pairs = cluster_pairs_at(w, collection, nodes)
            .map_err(|e| format!("{nodes}-node cluster: {e}"))?;
        match &agreed {
            None => agreed = Some((nodes, pairs)),
            Some((first_nodes, first)) if *first != pairs => {
                return Err(format!(
                    "node counts disagree: {} pair(s) at {first_nodes} node(s) vs {} at {nodes}",
                    first.len(),
                    pairs.len()
                ));
            }
            Some(_) => {}
        }
    }
    agreed
        .map(|(_, pairs)| pairs)
        .ok_or_else(|| "empty node sweep".to_string())
}

fn cluster_pairs_at(
    w: &AdversarialWorkload,
    collection: &SetCollection,
    nodes: usize,
) -> Result<Vec<(u32, u32)>, String> {
    use ssj_cluster::{ClusterSeq, HashRing, Router, RouterScratch, SimCluster};

    let cfg = ServerConfig {
        gamma: w.gamma,
        shards: 2,
        workers: 1,
        seed: w.seed ^ 0xc105,
        default_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let sim = SimCluster::start_memory(nodes, &cfg).map_err(|e| format!("start failed: {e}"))?;
    let ring = HashRing::new(nodes as u32, HashRing::DEFAULT_VNODES, cfg.seed);
    let mut router = Router::new(sim, ring, 0);
    let mut scratch = RouterScratch::default();

    let mut id_of = std::collections::HashMap::new();
    for i in 0..collection.len() {
        let ack = router
            .route_insert(collection.set(i as u32), &mut scratch)
            .map_err(|e| format!("insert {i} failed: {e}"))?;
        id_of.insert(ack.id, i as u32);
    }
    let mut pairs = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    let mut seen = ClusterSeq::new(nodes);
    for i in 0..collection.len() {
        router
            .route_query(collection.set(i as u32), &mut scratch, &mut out, &mut seen)
            .map_err(|e| format!("query {i} failed: {e}"))?;
        if seen.total() != collection.len() as u64 {
            return Err(format!(
                "query {i} saw {} write(s) across the cluster, {} were acked \
                 (components {:?})",
                seen.total(),
                collection.len(),
                seen.components()
            ));
        }
        for id in &out {
            let Some(&j) = id_of.get(id) else {
                return Err(format!("query {i} matched unknown cluster id {id}"));
            };
            let i = i as u32;
            if i != j {
                pairs.insert((i.min(j), i.max(j)));
            }
        }
    }
    Ok(pairs.into_iter().collect())
}

/// Partition counts the extern run is forced through: single-partition
/// (degenerates to one streamed load), the minimal split, and a prime
/// count that never divides the workload evenly.
const EXTERN_PARTITION_SWEEP: [usize; 3] = [1, 2, 7];

/// The out-of-core spill executor: writes the workload to a temporary
/// segment, then joins it at every partition count in
/// [`EXTERN_PARTITION_SWEEP`]. Partitioning is semantically invisible, so
/// all runs must return the identical pair set (and the caller compares
/// that set against the oracle like any exact scheme).
fn extern_pairs(
    w: &AdversarialWorkload,
    collection: &SetCollection,
    pred: Predicate,
    seed: u64,
) -> RunResult {
    let max_len = w.max_set_len().max(1);
    let scheme = GeneralPartEnum::new(pred, max_len, seed)
        .map_err(|e| format!("construction failed: {e}"))?;
    let path = std::env::temp_dir().join(format!(
        "ssjoin_difftest_{}_{}.seg",
        std::process::id(),
        w.seed
    ));
    let run = (|| {
        ssj_extern::write_collection_segment(&path, collection, 0)
            .map_err(|e| format!("segment write failed: {e}"))?;
        let mut agreed: Option<(usize, Vec<(u32, u32)>)> = None;
        for min_parts in EXTERN_PARTITION_SWEEP {
            let mut seg = ssj_extern::Segment::open_path(&path)
                .map_err(|e| format!("segment open failed: {e}"))?;
            let cfg = ssj_extern::ExternConfig {
                mem_budget: 1 << 30,
                min_partitions: min_parts,
                spill_dir: None,
                ..Default::default()
            };
            let (pairs, stats) =
                ssj_extern::external_self_join(&mut seg, &scheme, pred, None, &cfg)
                    .map_err(|e| format!("extern join (min_partitions {min_parts}) failed: {e}"))?;
            if stats.partitions < min_parts {
                return Err(format!(
                    "asked for at least {min_parts} partition(s), ran {}",
                    stats.partitions
                ));
            }
            match &agreed {
                None => agreed = Some((min_parts, pairs)),
                Some((first_parts, first)) if *first != pairs => {
                    return Err(format!(
                        "partition counts disagree: {} pair(s) at min_partitions {first_parts} \
                         vs {} at {min_parts}",
                        first.len(),
                        pairs.len()
                    ));
                }
                Some(_) => {}
            }
        }
        agreed
            .map(|(_, pairs)| pairs)
            .ok_or_else(|| "empty partition sweep".to_string())
    })();
    std::fs::remove_file(&path).ok();
    run
}

/// LSH is inexact, so it bypasses the join driver (whose debug-build
/// completeness invariant would — correctly — fire on recall misses) and
/// uses a direct signature-collision candidate pass instead. The difftest
/// only checks soundness: every reported pair must be a true pair.
fn lsh_pairs(
    w: &AdversarialWorkload,
    collection: &SetCollection,
    pred: Predicate,
    seed: u64,
) -> Vec<(u32, u32)> {
    let scheme = LshJaccard::optimized(w.gamma.min(0.99), 0.9, collection, 64, seed);
    let sigs: Vec<Vec<u64>> = (0..collection.len())
        .map(|i| {
            let mut s = scheme.signatures(collection.set(i as u32));
            s.sort_unstable();
            s
        })
        .collect();
    let mut out = Vec::new();
    for a in 0..collection.len() {
        for b in a + 1..collection.len() {
            let collide = sigs[a].iter().any(|s| sigs[b].binary_search(s).is_ok());
            if collide && pred.evaluate(collection.set(a as u32), collection.set(b as u32), None) {
                out.push((a as u32, b as u32));
            }
        }
    }
    out
}

/// Drives the full ssj-serve wire path in process: insert every set over a
/// scripted connection, query every set, and translate the matched global
/// ids back to input indices.
fn serve_pairs(w: &AdversarialWorkload, workers: usize) -> RunResult {
    let collection = w.collection();
    let server = Server::start(ServerConfig {
        gamma: w.gamma,
        shards: 2,
        workers: workers.max(1),
        seed: w.seed ^ 0x5e7e,
        default_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start failed: {e}"))?;
    let handle = server.handle();

    let mut script = String::new();
    for i in 0..collection.len() {
        script.push_str(&encode_op("insert", collection.set(i as u32)));
    }
    for i in 0..collection.len() {
        script.push_str(&encode_op("query", collection.set(i as u32)));
    }
    let mut out = Vec::new();
    let io = serve_connection(&handle, script.as_bytes(), &mut out);
    server.shutdown();
    io.map_err(|e| format!("wire session failed: {e}"))?;

    let text = String::from_utf8(out).map_err(|e| format!("non-utf8 response: {e}"))?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != 2 * collection.len() {
        return Err(format!(
            "expected {} response lines, got {}",
            2 * collection.len(),
            lines.len()
        ));
    }
    // Global id → input index (duplicates get distinct ids).
    let mut id_of = std::collections::HashMap::new();
    for (i, line) in lines[..collection.len()].iter().enumerate() {
        let id = extract_u64(line, "\"id\":")
            .ok_or_else(|| format!("insert {i} answered without an id: {line}"))?;
        id_of.insert(id, i as u32);
    }
    let mut pairs = std::collections::BTreeSet::new();
    for (i, line) in lines[collection.len()..].iter().enumerate() {
        let ids = extract_id_list(line)
            .ok_or_else(|| format!("query {i} answered without an id list: {line}"))?;
        for id in ids {
            let Some(&j) = id_of.get(&id) else {
                return Err(format!("query {i} matched unknown id {id}: {line}"));
            };
            let i = i as u32;
            if i != j {
                pairs.insert((i.min(j), i.max(j)));
            }
        }
    }
    Ok(pairs.into_iter().collect())
}

fn encode_op(op: &str, set: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{{\"op\":\"{op}\",\"set\":[");
    for (i, e) in set.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{e}");
    }
    line.push_str("]}\n");
    line
}

/// First integer following `key` in a response line.
fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The `"ids":[...]` list of a query response.
fn extract_id_list(line: &str) -> Option<Vec<u64>> {
    let at = line.find("\"ids\":[")? + "\"ids\":[".len();
    let end = line[at..].find(']')? + at;
    let body = &line[at..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|d| d.trim().parse().ok()).collect()
}

/// Compares a scheme run against the oracle. `None` means agreement;
/// `Some(detail)` is a human-readable divergence description.
pub fn check(kind: SchemeKind, w: &AdversarialWorkload, threads: usize) -> Option<String> {
    let truth = oracle_pairs(kind, w);
    match scheme_pairs(kind, w, threads) {
        Err(msg) => Some(msg),
        Ok(mut got) => {
            got.sort_unstable();
            got.dedup();
            let missing: Vec<_> = truth.iter().filter(|p| !got.contains(p)).collect();
            let extra: Vec<_> = got.iter().filter(|p| !truth.contains(p)).collect();
            if kind == SchemeKind::Lsh {
                // Approximate scheme: only unsound (extra) pairs count.
                if extra.is_empty() {
                    return None;
                }
                return Some(format!("unsound pairs reported: {extra:?}"));
            }
            if missing.is_empty() && extra.is_empty() {
                None
            } else {
                Some(format!(
                    "missing {} pair(s) {missing:?}, extra {} pair(s) {extra:?} \
                     (oracle total {})",
                    missing.len(),
                    extra.len(),
                    truth.len()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_datagen::generate_adversarial;

    #[test]
    fn oracle_and_exact_scheme_agree_on_an_easy_workload() {
        let w = AdversarialWorkload {
            seed: 0,
            gamma: 0.8,
            gamma_w: 0.8,
            hamming_k: 2,
            weighted_t: 1.0,
            domain: 10,
            sets: vec![vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5, 6], vec![7, 8]],
            weights: Vec::new(),
        };
        assert_eq!(check(SchemeKind::PeJaccard, &w, 1), None);
        assert_eq!(check(SchemeKind::PeHamming, &w, 2), None);
    }

    #[test]
    fn wire_helpers_parse_server_output() {
        assert_eq!(
            extract_u64("{\"ok\":true,\"id\":17,\"seq\":3}", "\"id\":"),
            Some(17)
        );
        assert_eq!(
            extract_id_list("{\"ok\":true,\"ids\":[1,5,9],\"seen\":2}"),
            Some(vec![1, 5, 9])
        );
        assert_eq!(extract_id_list("{\"ids\":[]}"), Some(Vec::new()));
    }

    #[test]
    fn panics_are_reported_not_propagated() {
        // A workload the harness must survive regardless of scheme bugs.
        let w = generate_adversarial(3);
        for &kind in SchemeKind::ALL {
            let _ = scheme_pairs(kind, &w, 1);
        }
    }
}
