//! `cargo xtask difftest` — deterministic differential testing of every
//! signature scheme against the naive oracle.
//!
//! For each seed, [`ssj_datagen::generate_adversarial`] produces a corner-
//! case workload (empty sets, duplicates, interval-boundary sizes, extreme
//! thresholds, tied weights); every scheme in the matrix then runs at 1, 2,
//! and 8 worker threads — plus the full `ssj-serve` wire path — and its
//! verified pair set is compared with the brute-force ground truth. Any
//! mismatch or panic is a divergence: the harness shrinks the workload with
//! [`shrink`] and prints a replay command plus a regression-test snippet.

pub mod oracle;
pub mod shrink;

use ssj_datagen::generate_adversarial;

/// Worker-thread counts every driver-based scheme runs at.
pub const THREAD_MATRIX: &[usize] = &[1, 2, 8];

/// One scheme slot in the difftest matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// `PartEnumHamming` under `Hd ≤ k`.
    PeHamming,
    /// `PartEnumJaccard` under `Js ≥ γ`.
    PeJaccard,
    /// `GeneralPartEnum` specialized to jaccard.
    GeneralJaccard,
    /// `GeneralPartEnum` under the max-fraction predicate.
    GeneralMaxFraction,
    /// `WtEnum` under weighted overlap `w(r∩s) ≥ T`.
    WtEnum,
    /// `WtEnumJaccard` under weighted jaccard.
    WtEnumJaccard,
    /// The prefix-filter baseline under jaccard.
    Prefix,
    /// The identity scheme (`Sign(s) = s`) under jaccard.
    Identity,
    /// LSH under jaccard — checked for soundness only (it may miss pairs
    /// by design, but must never report a false pair).
    Lsh,
    /// The `ssj-serve` wire path: insert + query every set over an
    /// in-process scripted connection.
    Serve,
    /// The out-of-core spill executor under jaccard: the workload is
    /// written to a segment and joined at several forced partition
    /// counts, which must all agree with each other and the oracle.
    Extern,
    /// The multi-node cluster path: every set inserted and queried
    /// through the scatter-gather router over simulated clusters of
    /// 2, 3, and 5 nodes, which must all agree with each other and the
    /// oracle (node count is semantically invisible, like partition
    /// count for `Extern`).
    Cluster,
}

impl SchemeKind {
    /// Every scheme in the matrix, in run order.
    pub const ALL: &'static [SchemeKind] = &[
        SchemeKind::PeHamming,
        SchemeKind::PeJaccard,
        SchemeKind::GeneralJaccard,
        SchemeKind::GeneralMaxFraction,
        SchemeKind::WtEnum,
        SchemeKind::WtEnumJaccard,
        SchemeKind::Prefix,
        SchemeKind::Identity,
        SchemeKind::Lsh,
        SchemeKind::Serve,
        SchemeKind::Extern,
        SchemeKind::Cluster,
    ];

    /// CLI name (`--schemes` takes a comma-separated list of these).
    pub fn name(self) -> &'static str {
        match self {
            Self::PeHamming => "pe-hamming",
            Self::PeJaccard => "pe-jaccard",
            Self::GeneralJaccard => "general-jaccard",
            Self::GeneralMaxFraction => "general-maxfraction",
            Self::WtEnum => "wtenum",
            Self::WtEnumJaccard => "wtenum-jaccard",
            Self::Prefix => "prefix",
            Self::Identity => "identity",
            Self::Lsh => "lsh",
            Self::Serve => "serve",
            Self::Extern => "extern",
            Self::Cluster => "cluster",
        }
    }

    /// Rust enum-variant name, for generated regression snippets.
    pub fn variant_name(self) -> &'static str {
        match self {
            Self::PeHamming => "PeHamming",
            Self::PeJaccard => "PeJaccard",
            Self::GeneralJaccard => "GeneralJaccard",
            Self::GeneralMaxFraction => "GeneralMaxFraction",
            Self::WtEnum => "WtEnum",
            Self::WtEnumJaccard => "WtEnumJaccard",
            Self::Prefix => "Prefix",
            Self::Identity => "Identity",
            Self::Lsh => "Lsh",
            Self::Serve => "Serve",
            Self::Extern => "Extern",
            Self::Cluster => "Cluster",
        }
    }

    /// Parses a CLI scheme name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Thread counts this scheme runs at. LSH uses its own sequential
    /// candidate pass, the server owns its worker pool, the extern
    /// executor streams partitions sequentially, and the cluster runs its
    /// own node-count sweep (their internal partition/node axes are the
    /// interesting ones), so each runs once per seed.
    pub fn thread_counts(self) -> &'static [usize] {
        match self {
            Self::Lsh | Self::Extern | Self::Cluster => &[1],
            Self::Serve => &[2],
            _ => THREAD_MATRIX,
        }
    }
}

/// What `cargo xtask difftest` was asked to do.
#[derive(Debug, Clone)]
pub struct DifftestConfig {
    /// Number of consecutive seeds to run, starting at 0.
    pub seeds: u64,
    /// Scheme subset (defaults to [`SchemeKind::ALL`]).
    pub schemes: Vec<SchemeKind>,
    /// Replay exactly this seed, verbosely, instead of sweeping.
    pub replay: Option<u64>,
}

impl Default for DifftestConfig {
    fn default() -> Self {
        Self {
            seeds: 100,
            schemes: SchemeKind::ALL.to_vec(),
            replay: None,
        }
    }
}

/// One confirmed scheme/oracle disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Workload seed.
    pub seed: u64,
    /// The diverging scheme.
    pub scheme: SchemeKind,
    /// Worker-thread count of the diverging run.
    pub threads: usize,
    /// Human-readable mismatch or panic description.
    pub detail: String,
}

/// Runs the configured sweep (or replay), printing progress and shrunken
/// repros to stdout. Returns every divergence found.
pub fn run(config: &DifftestConfig) -> Vec<Divergence> {
    // The harness treats panics as divergences; silence the default hook so
    // expected panics (debug invariants firing on a real bug) don't spam
    // backtraces mid-sweep.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = run_inner(config);
    std::panic::set_hook(hook);
    result
}

fn run_inner(config: &DifftestConfig) -> Vec<Divergence> {
    let seeds: Vec<u64> = match config.replay {
        Some(seed) => vec![seed],
        None => (0..config.seeds).collect(),
    };
    let verbose = config.replay.is_some();
    let mut divergences = Vec::new();
    for (done, &seed) in seeds.iter().enumerate() {
        let w = generate_adversarial(seed);
        if verbose {
            println!(
                "seed {seed}: {} sets, domain {}, gamma {}, gamma_w {}, k {}, t {}",
                w.sets.len(),
                w.domain,
                w.gamma,
                w.gamma_w,
                w.hamming_k,
                w.weighted_t
            );
        }
        for &scheme in &config.schemes {
            for &threads in scheme.thread_counts() {
                match oracle::check(scheme, &w, threads) {
                    None => {
                        if verbose {
                            println!("  {:<20} threads={threads}  ok", scheme.name());
                        }
                    }
                    Some(detail) => {
                        println!(
                            "DIVERGENCE seed={seed} scheme={} threads={threads}: {detail}",
                            scheme.name()
                        );
                        let small = shrink::shrink(&w, scheme, threads);
                        println!(
                            "  minimized to {} set(s): {:?}",
                            small.sets.len(),
                            small.sets
                        );
                        println!(
                            "  replay: cargo xtask difftest --replay {seed} --schemes {}",
                            scheme.name()
                        );
                        println!("  regression snippet:");
                        for line in shrink::regression_snippet(&small, scheme, threads).lines() {
                            println!("    {line}");
                        }
                        divergences.push(Divergence {
                            seed,
                            scheme,
                            threads,
                            detail,
                        });
                    }
                }
            }
        }
        if !verbose && (done + 1) % 50 == 0 {
            println!(
                "difftest: {}/{} seeds, {} divergence(s)",
                done + 1,
                seeds.len(),
                divergences.len()
            );
        }
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_round_trip() {
        for &k in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(k.name()), Some(k));
        }
        assert_eq!(SchemeKind::parse("nope"), None);
    }

    #[test]
    fn thread_counts_are_sane() {
        for &k in SchemeKind::ALL {
            assert!(!k.thread_counts().is_empty());
        }
        assert_eq!(SchemeKind::PeJaccard.thread_counts(), &[1, 2, 8]);
    }
}
