//! Greedy delta-debugging shrinker for divergent workloads.
//!
//! Given a workload on which a scheme diverges from the oracle, repeatedly
//! tries structure-preserving simplifications — drop whole sets, drop
//! individual tokens, simplify the weight table — keeping each change only
//! if the divergence (any divergence, not necessarily the original one)
//! survives. The result is a small, replayable repro plus a ready-to-paste
//! regression-test snippet.

use ssj_datagen::AdversarialWorkload;

use super::oracle;
use super::SchemeKind;

/// Upper bound on full passes; each pass only repeats if something shrank,
/// so this is a safety net, not a tuning knob.
const MAX_PASSES: usize = 8;

/// Shrinks `w` while `kind` at `threads` still diverges. Returns the
/// smallest workload found (at worst, `w` itself).
pub fn shrink(w: &AdversarialWorkload, kind: SchemeKind, threads: usize) -> AdversarialWorkload {
    let diverges = |cand: &AdversarialWorkload| oracle::check(kind, cand, threads).is_some();
    if !diverges(w) {
        return w.clone();
    }
    let mut best = w.clone();
    for _ in 0..MAX_PASSES {
        let mut shrank = false;

        // Pass 1: drop whole sets, scanning from the back so indices of
        // not-yet-tried sets stay stable.
        let mut i = best.sets.len();
        while i > 0 {
            i -= 1;
            if best.sets.len() <= 2 {
                break;
            }
            let mut cand = best.clone();
            cand.sets.remove(i);
            if diverges(&cand) {
                best = cand;
                shrank = true;
            }
        }

        // Pass 2: drop individual tokens.
        for si in 0..best.sets.len() {
            let mut ti = best.sets[si].len();
            while ti > 0 {
                ti -= 1;
                let mut cand = best.clone();
                cand.sets[si].remove(ti);
                if diverges(&cand) {
                    best = cand;
                    shrank = true;
                }
            }
        }

        // Pass 3: simplify weights — all-default first, then entry by entry.
        if !best.weights.is_empty() {
            let mut cand = best.clone();
            cand.weights.clear();
            if diverges(&cand) {
                best = cand;
                shrank = true;
            } else {
                let mut wi = best.weights.len();
                while wi > 0 {
                    wi -= 1;
                    let mut cand = best.clone();
                    cand.weights.remove(wi);
                    if diverges(&cand) {
                        best = cand;
                        shrank = true;
                    }
                }
            }
        }

        if !shrank {
            break;
        }
    }
    best
}

/// A ready-to-paste regression test exercising the minimized workload
/// through the difftest oracle.
pub fn regression_snippet(w: &AdversarialWorkload, kind: SchemeKind, threads: usize) -> String {
    let sets: Vec<String> = w
        .sets
        .iter()
        .map(|s| {
            let elems: Vec<String> = s.iter().map(u32::to_string).collect();
            format!("vec![{}]", elems.join(", "))
        })
        .collect();
    let weights: Vec<String> = w
        .weights
        .iter()
        .map(|(e, wt)| format!("({e}, {wt:?})"))
        .collect();
    format!(
        "// Minimized from `cargo xtask difftest --replay {seed} --schemes {name}`.\n\
         #[test]\n\
         fn difftest_seed_{seed}_{snake}() {{\n\
         \x20   let w = AdversarialWorkload {{\n\
         \x20       seed: {seed},\n\
         \x20       gamma: {gamma:?},\n\
         \x20       gamma_w: {gamma_w:?},\n\
         \x20       hamming_k: {k},\n\
         \x20       weighted_t: {t:?},\n\
         \x20       domain: {domain},\n\
         \x20       sets: vec![{sets}],\n\
         \x20       weights: vec![{weights}],\n\
         \x20   }};\n\
         \x20   assert_eq!(oracle::check(SchemeKind::{variant}, &w, {threads}), None);\n\
         }}\n",
        seed = w.seed,
        name = kind.name(),
        snake = kind.name().replace('-', "_"),
        gamma = w.gamma,
        gamma_w = w.gamma_w,
        k = w.hamming_k,
        t = w.weighted_t,
        domain = w.domain,
        sets = sets.join(", "),
        weights = weights.join(", "),
        variant = kind.variant_name(),
        threads = threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_returns_input_when_nothing_diverges() {
        let w = AdversarialWorkload {
            seed: 9,
            gamma: 0.8,
            gamma_w: 0.8,
            hamming_k: 2,
            weighted_t: 1.0,
            domain: 8,
            sets: vec![vec![1, 2, 3], vec![1, 2, 3, 4], vec![6, 7]],
            weights: vec![(1, 2.0)],
        };
        let s = shrink(&w, SchemeKind::PeJaccard, 1);
        assert_eq!(s, w);
    }

    #[test]
    fn snippet_is_self_describing() {
        let w = AdversarialWorkload {
            seed: 4,
            gamma: 1.0,
            gamma_w: 0.5,
            hamming_k: 0,
            weighted_t: 1.0,
            domain: 4,
            sets: vec![vec![], vec![]],
            weights: Vec::new(),
        };
        let snip = regression_snippet(&w, SchemeKind::Identity, 2);
        assert!(snip.contains("difftest_seed_4_identity"));
        assert!(snip.contains("SchemeKind::Identity"));
        assert!(snip.contains("--replay 4"));
    }
}
