//! `cargo xtask crashtest` — crash-fault injection against the durable
//! store, with differential recovery checking.
//!
//! Each seed deterministically drives a store-backed [`ShardedIndex`]
//! through a mixed insert/remove workload (optionally snapshotting midway,
//! optionally stopping inside the snapshot-rename/WAL-truncate crash
//! window), then simulates crashes by mutating the on-disk files at
//! adversarial byte offsets:
//!
//! * **truncate** — cut the WAL anywhere in `[durable_bytes, len]`
//!   (including mid-record), the footprint of a torn final append;
//! * **flip-wal** — flip one bit anywhere in the WAL, the footprint of
//!   silent media corruption;
//! * **flip-snap** — flip one bit anywhere in a snapshot file (header,
//!   body, or checksum);
//! * **stray-tmp** — leave a garbage `.snap.tmp` from a crashed snapshot;
//! * **mid-spill** — leave the debris of a crash mid-spill: a partial
//!   `part-N.spill.tmp` partition file and a half-written `.seg.tmp`
//!   segment (both must be swept, and neither may be listed as a segment);
//! * **flip-segment** — compact the acked state into a real segment, then
//!   flip one bit anywhere in it: the flip must surface as a hard error on
//!   open or block scan, and must not disturb WAL recovery;
//! * **clean** — no mutation at all (control).
//!
//! Recovery then reopens the directory and the recovered state is compared
//! — exactly, shard by shard, id by id — against an in-memory oracle
//! replaying the same logical operations up to the recovered sequence
//! number. The invariants checked:
//!
//! 1. recovery never panics, and fails only for snapshot corruption
//!    (which is detected by checksum, never silently decoded);
//! 2. the recovered state is always a *prefix* of the acked history, and
//!    equals the oracle replayed to exactly that prefix;
//! 3. a crash (truncation) never loses a durably-acked write: the
//!    recovered sequence number covers the durable watermark observed at
//!    crash time.
//!
//! Divergences print a `--replay <seed>` command, difftest-style.
//!
//! The [`cluster`] module runs the multi-node counterpart per seed:
//! node-kill, restart-all, replica-promotion, and snapshot-ship-litter
//! scenarios against a 2-node durable simulated cluster, compared against
//! an oracle at the acked [`ssj_cluster::ClusterSeq`].

pub mod cluster;

use ssj_serve::{ServerConfig, ShardedIndex, SyncMode, WriteResult};
use std::fs;
use std::path::{Path, PathBuf};

/// What `cargo xtask crashtest` was asked to do.
#[derive(Debug, Clone)]
pub struct CrashtestConfig {
    /// Number of consecutive seeds to run, starting at 0.
    pub seeds: u64,
    /// Replay exactly this seed, verbosely, instead of sweeping.
    pub replay: Option<u64>,
}

impl Default for CrashtestConfig {
    fn default() -> Self {
        Self {
            seeds: 100,
            replay: None,
        }
    }
}

/// One recovery that disagreed with the oracle (or failed when it must
/// not, or succeeded when it must not).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Workload seed.
    pub seed: u64,
    /// Mutation scenario that exposed it.
    pub scenario: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// SplitMix64 — tiny, seedable, dependency-free; every choice the harness
/// makes flows from this so `--replay <seed>` reproduces a run exactly.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678))
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; 0 when `n == 0`.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// One logical operation of the acked history, replayable on any index
/// built from the same config.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Remove(u64),
}

/// Everything the driver learned before the simulated crash.
struct CrashPoint {
    /// The data directory as the crashed process left it.
    dir: PathBuf,
    /// Acked operations in sequence order (op `i` is write number `i`).
    ops: Vec<Op>,
    /// Durable watermark at crash time: writes below it must survive any
    /// *truncation* (a truncated suffix is exactly what a torn final
    /// append looks like).
    durable_seq: u64,
    /// WAL bytes known durable; truncation cuts at or beyond this.
    durable_bytes: u64,
    /// The server config the directory is bound to.
    cfg: ServerConfig,
}

fn base_cfg(seed: u64, shards: usize, sync: SyncMode, dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        gamma: 0.8,
        shards,
        initial_max_size: 16,
        seed,
        data_dir: dir,
        sync,
        snapshot_every: 0, // the driver snapshots explicitly
        ..ServerConfig::default()
    }
}

/// Drives the seeded workload against a durable index and stops without
/// any graceful shutdown, returning the crash-time facts.
fn drive(seed: u64, scratch: &Path) -> Result<CrashPoint, String> {
    let mut rng = Rng::new(seed);
    let shards = 1 + rng.below(4) as usize;
    // Every: each ack is durable (tight recovery bound, no torn window).
    // Never: nothing is durable until a snapshot (maximal torn window).
    let sync = if seed.is_multiple_of(2) {
        SyncMode::Every
    } else {
        SyncMode::Never
    };
    let dir = scratch.join("base");
    let cfg = base_cfg(seed, shards, sync, Some(dir.clone()));
    let idx = ShardedIndex::open(&cfg).map_err(|e| format!("initial open failed: {e}"))?;

    let n_ops = 20 + rng.below(60);
    // Optional mid-workload compaction; optionally "crash" inside the
    // snapshot-written/WAL-not-yet-truncated window instead.
    let snap_at = if rng.below(2) == 0 {
        Some(1 + rng.below(n_ops - 1))
    } else {
        None
    };
    let snap_gap = rng.below(4) == 0;

    let mut ops = Vec::new();
    let mut issued: Vec<u64> = Vec::new();
    for i in 0..n_ops {
        if Some(i) == snap_at {
            if snap_gap {
                // The crash window between the two halves of a snapshot:
                // images renamed into place, WAL left untruncated.
                let (states, seq) = idx.dump();
                let store = idx.store().ok_or("durable index lost its store")?;
                store
                    .snapshot_without_truncate(seq, &states)
                    .map_err(|e| format!("snapshot_without_truncate failed: {e}"))?;
            } else {
                idx.snapshot_now()
                    .map_err(|e| format!("snapshot failed: {e}"))?;
            }
        }
        let remove = !issued.is_empty() && rng.below(10) < 3;
        if remove {
            let id = issued[rng.below(issued.len() as u64) as usize];
            match idx.remove_d(id) {
                WriteResult::Done(_, _) => ops.push(Op::Remove(id)),
                WriteResult::StoreFailed(e) => return Err(format!("remove failed: {e}")),
            }
        } else {
            let len = 1 + rng.below(8) as usize;
            let mut set: Vec<u32> = (0..len).map(|_| rng.below(50) as u32).collect();
            set.sort_unstable();
            set.dedup();
            match idx.insert_d(set.clone()) {
                WriteResult::Done((id, _), _) => {
                    issued.push(id);
                    ops.push(Op::Insert(set));
                }
                WriteResult::StoreFailed(e) => return Err(format!("insert failed: {e}")),
            }
        }
    }

    let store = idx.store().ok_or("durable index lost its store")?;
    let durable_seq = store.durable_seq();
    let durable_bytes = store.durable_wal_bytes();
    // Crash: drop without flush, drain, or truncation. Appended bytes are
    // in the file (same-process visibility); durability bookkeeping above
    // tells us which prefix a real power cut would have guaranteed.
    drop(idx);
    Ok(CrashPoint {
        dir,
        ops,
        durable_seq,
        durable_bytes,
        cfg,
    })
}

/// Replays `ops[..seq]` on a fresh in-memory index and returns its state.
fn oracle_state(cp: &CrashPoint, seq: u64) -> Result<(Vec<ssj_store::ShardState>, u64), String> {
    if seq > cp.ops.len() as u64 {
        return Err(format!(
            "recovered seq {seq} exceeds the {} acked writes",
            cp.ops.len()
        ));
    }
    let mem_cfg = ServerConfig {
        data_dir: None,
        ..cp.cfg.clone()
    };
    let oracle = ShardedIndex::new(&mem_cfg).map_err(|e| format!("oracle build failed: {e}"))?;
    for op in &cp.ops[..seq as usize] {
        match op {
            Op::Insert(set) => {
                let _ = oracle.insert(set.clone());
            }
            Op::Remove(id) => {
                let _ = oracle.remove(*id);
            }
        }
    }
    Ok(oracle.dump())
}

/// Recovers `dir` and demands exact agreement with the oracle prefix at
/// the recovered sequence number. `min_seq` is the durable watermark the
/// recovery must reach (0 when the mutation may destroy durable data).
fn check_recovery(cp: &CrashPoint, dir: &Path, min_seq: u64) -> Result<(), String> {
    let cfg = ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..cp.cfg.clone()
    };
    let recovered = ShardedIndex::open(&cfg).map_err(|e| format!("recovery failed: {e}"))?;
    let (got_states, got_seq) = recovered.dump();
    if got_seq < min_seq {
        return Err(format!(
            "recovered only to seq {got_seq}, but writes below {min_seq} were durably acked"
        ));
    }
    let (want_states, want_seq) = oracle_state(cp, got_seq)?;
    if got_seq != want_seq {
        return Err(format!("oracle seq {want_seq} != recovered seq {got_seq}"));
    }
    if got_states != want_states {
        return Err(format!(
            "state diverged from oracle at seq {got_seq}:\n  recovered: {got_states:?}\n  oracle:    {want_states:?}"
        ));
    }
    // The recovered index must stay serviceable: a post-recovery write
    // must ack and be queryable.
    match recovered.insert_d(vec![1, 2, 3]) {
        WriteResult::Done((id, _), _) => {
            let (ids, _, _) = recovered.query(vec![1, 2, 3]);
            if !ids.contains(&id) {
                return Err("post-recovery insert not visible to query".into());
            }
        }
        WriteResult::StoreFailed(e) => {
            return Err(format!("post-recovery insert failed: {e}"));
        }
    }
    Ok(())
}

/// Copies the flat data directory (WAL, snapshots, meta) for one scenario.
fn copy_dir(src: &Path, dst: &Path) -> Result<(), String> {
    fs::create_dir_all(dst).map_err(|e| format!("mkdir {}: {e}", dst.display()))?;
    let entries = fs::read_dir(src).map_err(|e| format!("read_dir {}: {e}", src.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", src.display()))?;
        if entry.path().is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name()))
                .map_err(|e| format!("copy {}: {e}", entry.path().display()))?;
        }
    }
    Ok(())
}

fn snap_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("shard-") && name.ends_with(".snap") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Scenario outcome: `Ok(detail)` describing what ran, `Err` a divergence.
type Scenario = Result<(), String>;

fn scenario_clean(cp: &CrashPoint, dir: &Path) -> Scenario {
    // Control: no mutation. Everything appended is present, so recovery
    // must reach the full acked history.
    check_recovery(cp, dir, cp.ops.len() as u64)
}

fn scenario_truncate(cp: &CrashPoint, dir: &Path, rng: &mut Rng) -> Scenario {
    let wal = dir.join("wal.log");
    let len = fs::metadata(&wal)
        .map_err(|e| format!("stat wal: {e}"))?
        .len();
    let lo = cp.durable_bytes.min(len);
    // Adversarial cut anywhere at or past the durable prefix — including
    // mid-varint and mid-checksum of a record.
    let cut = lo + rng.below(len - lo + 1);
    let f = fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .map_err(|e| format!("open wal: {e}"))?;
    f.set_len(cut).map_err(|e| format!("truncate wal: {e}"))?;
    drop(f);
    check_recovery(cp, dir, cp.durable_seq)
        .map_err(|e| format!("truncate at {cut}/{len} (durable {lo}): {e}"))
}

fn scenario_flip_wal(cp: &CrashPoint, dir: &Path, rng: &mut Rng) -> Scenario {
    let wal = dir.join("wal.log");
    let mut bytes = fs::read(&wal).map_err(|e| format!("read wal: {e}"))?;
    if bytes.is_empty() {
        return Ok(()); // nothing to corrupt (everything compacted)
    }
    let pos = rng.below(bytes.len() as u64) as usize;
    let bit = 1u8 << rng.below(8);
    bytes[pos] ^= bit;
    fs::write(&wal, &bytes).map_err(|e| format!("write wal: {e}"))?;
    // A flipped record must be *detected* (CRC) and discarded together
    // with everything after it — so recovery lands on some prefix and
    // must agree with the oracle there. A flip inside the durable region
    // is media corruption, not a crash, so no durability floor applies.
    check_recovery(cp, dir, 0).map_err(|e| format!("bit flip at byte {pos} bit {bit}: {e}"))
}

fn scenario_flip_snap(cp: &CrashPoint, dir: &Path, rng: &mut Rng) -> Scenario {
    let snaps = snap_files(dir)?;
    if snaps.is_empty() {
        return Ok(()); // seed never snapshotted
    }
    let target = &snaps[rng.below(snaps.len() as u64) as usize];
    let mut bytes = fs::read(target).map_err(|e| format!("read snap: {e}"))?;
    if bytes.is_empty() {
        return Ok(());
    }
    let pos = rng.below(bytes.len() as u64) as usize;
    bytes[pos] ^= 1 << rng.below(8);
    fs::write(target, &bytes).map_err(|e| format!("write snap: {e}"))?;
    // Snapshots are whole-file checksummed: any flip — magic, header,
    // body, or trailer — must make recovery fail loudly rather than
    // deliver a silently wrong index.
    let cfg = ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..cp.cfg.clone()
    };
    match ShardedIndex::open(&cfg) {
        Err(_) => Ok(()),
        Ok(_) => Err(format!(
            "flipped byte {pos} of {} yet recovery reported success",
            target.display()
        )),
    }
}

fn scenario_stray_tmp(cp: &CrashPoint, dir: &Path) -> Scenario {
    // A crash mid-snapshot leaves a partially written tmp file that never
    // got renamed; it must be swept aside, not mistaken for a snapshot.
    fs::write(dir.join("shard-0.snap.tmp"), b"partial garbage")
        .map_err(|e| format!("write tmp: {e}"))?;
    check_recovery(cp, dir, cp.ops.len() as u64).map_err(|e| format!("stray tmp file: {e}"))
}

fn scenario_mid_spill(cp: &CrashPoint, dir: &Path) -> Scenario {
    // A crash mid-spill leaves partial partition files, and a crash
    // mid-compaction a half-written segment; both stage through
    // tmp-suffixed names, so recovery must sweep them aside and the
    // segment listing must not mistake them for segments.
    fs::write(
        dir.join(ssj_extern::spill::partition_file_name(0)),
        b"partial spill garbage",
    )
    .map_err(|e| format!("write stray spill: {e}"))?;
    let seg_tmp = format!("{}.tmp", ssj_store::segment_file_name(42));
    fs::write(dir.join(&seg_tmp), b"half a segment").map_err(|e| format!("write seg tmp: {e}"))?;
    let listed = ssj_store::list_segment_files(dir).map_err(|e| format!("list segments: {e}"))?;
    if !listed.is_empty() {
        return Err(format!(
            "tmp-suffixed debris was listed as {} segment(s): {listed:?}",
            listed.len()
        ));
    }
    check_recovery(cp, dir, cp.ops.len() as u64).map_err(|e| format!("mid-spill debris: {e}"))
}

/// Opens `path` as a segment and reads every block — the full set of
/// checksums the format carries. Any undetected corruption escapes here.
fn scan_segment(path: &Path) -> std::io::Result<()> {
    let mut seg = ssj_extern::Segment::open_path(path)?;
    let mut block = ssj_extern::SegmentBlock::default();
    for idx in 0..seg.blocks().len() {
        seg.read_block(idx, &mut block)?;
    }
    Ok(())
}

fn scenario_flip_segment(cp: &CrashPoint, dir: &Path, rng: &mut Rng) -> Scenario {
    // Compact the full acked state into a real segment, then flip one bit
    // anywhere — magic, block frames, footer, or trailer. The format is
    // CRC-framed end to end, so every flip must be *detected* (on open or
    // on a block read), and the corrupt segment sitting in the data dir
    // must not disturb WAL recovery.
    let (states, seq) = oracle_state(cp, cp.ops.len() as u64)?;
    let path = dir.join(ssj_store::segment_file_name(seq));
    ssj_extern::segment_from_states(&states, &path)
        .map_err(|e| format!("segment write failed: {e}"))?;
    scan_segment(&path).map_err(|e| format!("pristine segment failed its own scan: {e}"))?;
    let mut bytes = fs::read(&path).map_err(|e| format!("read segment: {e}"))?;
    let pos = rng.below(bytes.len() as u64) as usize;
    let bit = 1u8 << rng.below(8);
    bytes[pos] ^= bit;
    fs::write(&path, &bytes).map_err(|e| format!("write segment: {e}"))?;
    if scan_segment(&path).is_ok() {
        return Err(format!(
            "flipped byte {pos} bit {bit:#04x} of the segment yet open + full block scan \
             reported success"
        ));
    }
    check_recovery(cp, dir, cp.ops.len() as u64)
        .map_err(|e| format!("corrupt segment broke recovery: {e}"))
}

/// Runs the configured sweep (or replay). Returns every divergence.
pub fn run(config: &CrashtestConfig) -> Vec<Divergence> {
    let seeds: Vec<u64> = match config.replay {
        Some(seed) => vec![seed],
        None => (0..config.seeds).collect(),
    };
    let verbose = config.replay.is_some();
    let scratch_root = std::env::temp_dir().join(format!("ssj-crashtest-{}", std::process::id()));
    let mut divergences = Vec::new();
    for (done, &seed) in seeds.iter().enumerate() {
        let scratch = scratch_root.join(format!("seed-{seed}"));
        let _ = fs::remove_dir_all(&scratch);
        run_seed(seed, &scratch, verbose, &mut divergences);
        cluster::run_seed(seed, &scratch.join("cluster"), verbose, &mut divergences);
        let _ = fs::remove_dir_all(&scratch);
        if !verbose && (done + 1) % 50 == 0 {
            println!(
                "crashtest: {}/{} seeds, {} divergence(s)",
                done + 1,
                seeds.len(),
                divergences.len()
            );
        }
    }
    let _ = fs::remove_dir_all(&scratch_root);
    divergences
}

fn run_seed(seed: u64, scratch: &Path, verbose: bool, divergences: &mut Vec<Divergence>) {
    let cp = match drive(seed, scratch) {
        Ok(cp) => cp,
        Err(detail) => {
            println!("DIVERGENCE seed={seed} scenario=drive: {detail}");
            divergences.push(Divergence {
                seed,
                scenario: "drive",
                detail,
            });
            return;
        }
    };
    if verbose {
        println!(
            "seed {seed}: {} ops, {} shards, durable_seq {}, durable_bytes {}",
            cp.ops.len(),
            cp.cfg.shards,
            cp.durable_seq,
            cp.durable_bytes
        );
    }
    // Each scenario mutates its own copy of the crashed directory; the
    // scenario RNG is derived from the seed so replays are exact.
    let mut rng = Rng::new(seed ^ 0xC4A5_47E5);
    type ScenarioFn = Box<dyn FnMut(&CrashPoint, &Path, &mut Rng) -> Scenario>;
    let scenarios: [(&'static str, ScenarioFn); 7] = [
        ("clean", Box::new(|cp, d, _| scenario_clean(cp, d))),
        ("truncate", Box::new(scenario_truncate)),
        ("flip-wal", Box::new(scenario_flip_wal)),
        ("flip-snap", Box::new(scenario_flip_snap)),
        ("stray-tmp", Box::new(|cp, d, _| scenario_stray_tmp(cp, d))),
        ("mid-spill", Box::new(|cp, d, _| scenario_mid_spill(cp, d))),
        ("flip-segment", Box::new(scenario_flip_segment)),
    ];
    for (name, mut scenario) in scenarios {
        let dir = scratch.join(name);
        if let Err(detail) = copy_dir(&cp.dir, &dir) {
            divergences.push(Divergence {
                seed,
                scenario: name,
                detail,
            });
            continue;
        }
        match scenario(&cp, &dir, &mut rng) {
            Ok(()) => {
                if verbose {
                    println!("  {name:<10} ok");
                }
            }
            Err(detail) => {
                println!("DIVERGENCE seed={seed} scenario={name}: {detail}");
                println!("  replay: cargo xtask crashtest --replay {seed}");
                divergences.push(Divergence {
                    seed,
                    scenario: name,
                    detail,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
        assert_eq!(Rng::new(7).below(0), 0);
    }

    #[test]
    fn a_few_seeds_pass_clean() {
        let config = CrashtestConfig {
            seeds: 3,
            replay: None,
        };
        let divergences = run(&config);
        assert!(
            divergences.is_empty(),
            "crashtest smoke found divergences: {divergences:?}"
        );
    }
}
