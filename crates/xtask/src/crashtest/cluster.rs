//! Cluster node-kill scenarios: the multi-node half of `cargo xtask
//! crashtest`.
//!
//! Each seed drives a 2-node **durable** simulated cluster through the
//! scatter-gather router, recording every acked write per node (the
//! cluster's acked history), then runs node-kill scenarios:
//!
//! * **kill-mid-write** — the owner dies partway through the write
//!   stream; unacked writes to the dead node fail loudly (`NodeDown`,
//!   never a silent drop), the survivor keeps acking, and after a restart
//!   the dead node recovers to exactly the oracle replay of its acked
//!   prefix (floor: its durable watermark at kill time);
//! * **restart-all** — every node dies after quiesce and rejoins from its
//!   data directory; each recovered state must equal the oracle at the
//!   node's recovered sequence number, and the folded [`ClusterSeq`] of a
//!   post-restart query must account for every acked write;
//! * **promote-replica** — a replica bootstrapped from shipped snapshots
//!   and caught up over `tail` is persisted as a real data directory
//!   after the owner dies; opening that directory must recover the full
//!   acked history of the dead node (no acknowledged write below the
//!   replica's seq is lost) and take writes as the new owner;
//! * **ship-litter** — promotion into a directory polluted with stray
//!   `*.snap.tmp` debris (the footprint of a crash mid-snapshot-ship)
//!   must sweep the litter and recover cleanly;
//! * **crash-mid-promotion** — a first promotion attempt dies partway:
//!   only a prefix of the shard images was published and one image is a
//!   torn `*.tmp` stage; the retried `persist_to` must sweep the stage,
//!   re-ship every shard, and recover to exactly the oracle.
//!
//! The promotion scenarios end with
//! [`ssj_io::fswitness::assert_dir_settled`]: xtask runs under
//! `debug_assertions`, so the runtime fs-order witness tracks every
//! create/fsync/rename the promotion performed and the assertion pins
//! that no rename was left without its directory fsync.
//!
//! Divergences report a `--replay <seed>` command like the single-node
//! scenarios.

use ssj_cluster::{ClusterSeq, HashRing, Replica, Router, RouterScratch, SimCluster};
use ssj_serve::{ServerConfig, ShardedIndex, SyncMode};
use std::fs;
use std::path::{Path, PathBuf};

use super::{Divergence, Rng};

/// One acked logical operation on one node, in that node's write order.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    /// Node-local global id (what the node's own WAL records).
    Remove(u64),
}

/// Everything a scenario learns from driving the seeded workload.
struct Drive {
    router: Router<SimCluster>,
    /// Per-node acked ops, in each node's write order.
    logs: Vec<Vec<Op>>,
    /// Per-node durable watermark from the last ack before the kill (or
    /// quiesce): writes below it must survive any restart.
    durable: Vec<u64>,
    /// Every set acked by an insert (for post-scenario queries).
    sets: Vec<Vec<u32>>,
    /// The memory-only node config (per-node `data_dir` is added by the
    /// sim; the oracle replays on this).
    base_cfg: ServerConfig,
}

const NODES: usize = 2;

fn base_cfg(seed: u64, sync: SyncMode) -> ServerConfig {
    ServerConfig {
        gamma: 0.8,
        shards: 1 + (seed % 3) as usize,
        workers: 1,
        initial_max_size: 16,
        seed: seed ^ 0xc1a5,
        sync,
        snapshot_every: 0,
        ..ServerConfig::default()
    }
}

/// Drives the seeded workload. `kill_at` stops node `kill_node` after
/// that many acked writes landed on it; subsequent writes owned by the
/// dead node must fail loudly and are excluded from the acked history.
fn drive(seed: u64, scratch: &Path, kill_at: Option<(usize, usize)>) -> Result<Drive, String> {
    let mut rng = Rng::new(seed ^ 0x0c10_57e4);
    let sync = if seed.is_multiple_of(2) {
        SyncMode::Every
    } else {
        SyncMode::Never
    };
    let cfg = base_cfg(seed, sync);
    let dirs: Vec<PathBuf> = (0..NODES).map(|n| scratch.join(format!("n{n}"))).collect();
    let sim = SimCluster::start_durable(&cfg, &dirs).map_err(|e| format!("start: {e}"))?;
    let ring = HashRing::new(NODES as u32, HashRing::DEFAULT_VNODES, cfg.seed);
    let mut router = Router::new(sim, ring, 0);
    let mut scratch_bufs = RouterScratch::default();

    let mut logs: Vec<Vec<Op>> = vec![Vec::new(); NODES];
    let mut durable = vec![0u64; NODES];
    let mut sets = Vec::new();
    let mut issued: Vec<u64> = Vec::new(); // live cluster ids
    let mut killed = false;
    let n_ops = 25 + rng.below(35);
    for _ in 0..n_ops {
        if let Some((node, at)) = kill_at {
            if !killed && logs[node].len() >= at {
                router.transport_mut().kill(node);
                killed = true;
            }
        }
        let remove = !issued.is_empty() && rng.below(10) < 3;
        if remove {
            let pick = rng.below(issued.len() as u64) as usize;
            let id = issued[pick];
            match router.route_remove(id, &mut scratch_bufs) {
                Ok(ack) => {
                    logs[ack.node].push(Op::Remove(id / NODES as u64));
                    if let Some(d) = ack.durable_seq {
                        durable[ack.node] = d;
                    }
                    issued.swap_remove(pick);
                }
                Err(e) if killed => {
                    // The dead node refusing a write is the contract, not
                    // a divergence — the op was never acked.
                    let want_node = (id % NODES as u64) as usize;
                    if !matches!(e, ssj_cluster::RouterError::NodeDown(n) if n == want_node) {
                        return Err(format!("remove failed oddly with a node down: {e}"));
                    }
                }
                Err(e) => return Err(format!("remove failed: {e}")),
            }
        } else {
            let len = 1 + rng.below(8) as usize;
            let mut set: Vec<u32> = (0..len).map(|_| rng.below(50) as u32).collect();
            set.sort_unstable();
            set.dedup();
            match router.route_insert(&set, &mut scratch_bufs) {
                Ok(ack) => {
                    logs[ack.node].push(Op::Insert(set.clone()));
                    if let Some(d) = ack.durable_seq {
                        durable[ack.node] = d;
                    }
                    issued.push(ack.id);
                    sets.push(set);
                }
                Err(ssj_cluster::RouterError::NodeDown(_)) if killed => {}
                Err(e) => return Err(format!("insert failed: {e}")),
            }
        }
    }
    Ok(Drive {
        router,
        logs,
        durable,
        sets,
        base_cfg: cfg,
    })
}

/// Replays `log[..upto]` on a fresh memory-only index.
fn oracle_state(
    cfg: &ServerConfig,
    log: &[Op],
    upto: u64,
) -> Result<(Vec<ssj_store::ShardState>, u64), String> {
    if upto > log.len() as u64 {
        return Err(format!(
            "recovered seq {upto} exceeds the {} acked writes",
            log.len()
        ));
    }
    let oracle = ShardedIndex::new(cfg).map_err(|e| format!("oracle build: {e}"))?;
    for op in &log[..upto as usize] {
        match op {
            Op::Insert(set) => {
                let _ = oracle.insert(set.clone());
            }
            Op::Remove(id) => {
                let _ = oracle.remove(*id);
            }
        }
    }
    Ok(oracle.dump())
}

/// Demands that node `node`'s live state equals the oracle replay of its
/// acked log at the node's own sequence number, with `min_seq` as the
/// durability floor.
fn check_node(d: &Drive, node: usize, min_seq: u64) -> Result<(), String> {
    let server = d
        .router
        .transport()
        .server(node)
        .ok_or_else(|| format!("node {node} not running"))?;
    let (got_states, got_seq) = server.index().dump();
    if got_seq < min_seq {
        return Err(format!(
            "node {node} recovered only to seq {got_seq}, durable floor is {min_seq}"
        ));
    }
    let (want_states, want_seq) = oracle_state(&d.base_cfg, &d.logs[node], got_seq)?;
    if got_seq != want_seq {
        return Err(format!(
            "node {node}: oracle seq {want_seq} != recovered {got_seq}"
        ));
    }
    if got_states != want_states {
        return Err(format!(
            "node {node} diverged from its acked history at seq {got_seq}"
        ));
    }
    Ok(())
}

/// Post-scenario serviceability: a routed write acks and is queryable.
fn check_serviceable(d: &mut Drive) -> Result<(), String> {
    let mut scratch = RouterScratch::default();
    let probe = vec![101, 102, 103];
    let ack = d
        .router
        .route_insert(&probe, &mut scratch)
        .map_err(|e| format!("post-scenario insert failed: {e}"))?;
    let mut out = Vec::new();
    let mut seen = ClusterSeq::new(NODES);
    d.router
        .route_query(&probe, &mut scratch, &mut out, &mut seen)
        .map_err(|e| format!("post-scenario query failed: {e}"))?;
    if !out.contains(&ack.id) {
        return Err("post-scenario insert not visible to scatter-gather query".into());
    }
    Ok(())
}

/// The folded ClusterSeq of one quiesced query must account for every
/// acked write on every node.
fn check_cluster_seq(d: &mut Drive) -> Result<ClusterSeq, String> {
    let mut scratch = RouterScratch::default();
    let mut out = Vec::new();
    let mut seen = ClusterSeq::new(NODES);
    d.router
        .route_query(&[1, 2, 3], &mut scratch, &mut out, &mut seen)
        .map_err(|e| format!("quiesce query failed: {e}"))?;
    for node in 0..NODES {
        let acked = d.logs[node].len() as u64;
        if seen.components()[node] != acked {
            return Err(format!(
                "ClusterSeq component {node} is {}, node acked {acked} write(s)",
                seen.components()[node]
            ));
        }
    }
    Ok(seen)
}

type Scenario = Result<(), String>;

/// Owner dies mid-stream; unacked writes fail loudly; restart recovers
/// the acked prefix.
fn scenario_kill_mid_write(seed: u64, scratch: &Path, rng: &mut Rng) -> Scenario {
    let node = rng.below(NODES as u64) as usize;
    let at = 3 + rng.below(10) as usize;
    let mut d = drive(seed, scratch, Some((node, at)))?;
    d.router
        .transport_mut()
        .restart(node)
        .map_err(|e| format!("restart: {e}"))?;
    check_node(&d, node, d.durable[node])
        .map_err(|e| format!("killed at {at} acked write(s): {e}"))?;
    check_serviceable(&mut d)
}

/// Every node restarts after quiesce; recovered states and the folded
/// ClusterSeq must match the acked history exactly.
fn scenario_restart_all(seed: u64, scratch: &Path) -> Scenario {
    let mut d = drive(seed, scratch, None)?;
    check_cluster_seq(&mut d)?;
    // Answers to every acked set before the kill...
    let mut scratch_bufs = RouterScratch::default();
    let mut out = Vec::new();
    let mut seen = ClusterSeq::new(NODES);
    let sets = std::mem::take(&mut d.sets);
    let mut before = Vec::with_capacity(sets.len());
    for set in &sets {
        d.router
            .route_query(set, &mut scratch_bufs, &mut out, &mut seen)
            .map_err(|e| format!("pre-kill query failed: {e}"))?;
        before.push(out.clone());
    }
    for node in 0..NODES {
        d.router.transport_mut().kill(node);
    }
    for node in 0..NODES {
        d.router
            .transport_mut()
            .restart(node)
            .map_err(|e| format!("restart {node}: {e}"))?;
    }
    for node in 0..NODES {
        check_node(&d, node, d.durable[node]).map_err(|e| format!("after restart-all: {e}"))?;
    }
    // ...must be byte-identical after every node rejoined.
    for (set, want) in sets.iter().zip(&before) {
        d.router
            .route_query(set, &mut scratch_bufs, &mut out, &mut seen)
            .map_err(|e| format!("post-restart query failed: {e}"))?;
        if &out != want {
            return Err(format!("restart-all changed the answer for {set:?}"));
        }
    }
    // The post-restart folded watermark still accounts for every ack.
    check_cluster_seq(&mut d)?;
    check_serviceable(&mut d)
}

/// Replica promotion after the owner dies: the persisted directory must
/// hold the full acked history of the dead node.
fn scenario_promote_replica(seed: u64, scratch: &Path, litter: bool) -> Scenario {
    let mut d = drive(seed, scratch, None)?;
    let node = 0;
    let node_cfg = d.router.transport_mut().node_config(node).clone();
    let mut replica = Replica::bootstrap(d.router.transport_mut(), node, &node_cfg)
        .map_err(|e| format!("bootstrap: {e}"))?;
    replica
        .catch_up(d.router.transport_mut())
        .map_err(|e| format!("catch-up: {e}"))?;
    let acked = d.logs[node].len() as u64;
    if replica.seq() != acked {
        return Err(format!(
            "caught-up replica is at seq {}, owner acked {acked} write(s)",
            replica.seq()
        ));
    }
    d.router.transport_mut().kill(node);

    let promote_dir = scratch.join("promoted");
    fs::create_dir_all(&promote_dir).map_err(|e| format!("mkdir: {e}"))?;
    if litter {
        // A crash mid-snapshot-ship leaves half-written tmp images; they
        // must be swept, never decoded.
        fs::write(
            promote_dir.join("shard-0.snap.tmp"),
            b"half a shipped image",
        )
        .map_err(|e| format!("write litter: {e}"))?;
    }
    replica
        .persist_to(&promote_dir)
        .map_err(|e| format!("persist_to: {e}"))?;
    ssj_io::fswitness::assert_dir_settled(&promote_dir);
    check_promoted(&d, node, acked, &node_cfg, &promote_dir)
}

/// A first promotion attempt crashes mid-ship: only a prefix of the shard
/// images was published, and one image sits as a torn `*.tmp` stage (the
/// exact on-disk footprint of `atomic_write_durable` dying between create
/// and rename). The retried promotion must sweep the stage, re-ship every
/// shard at the replica's watermark, and recover to exactly the oracle.
fn scenario_crash_mid_promotion(seed: u64, scratch: &Path) -> Scenario {
    let mut d = drive(seed, scratch, None)?;
    let node = 0;
    let node_cfg = d.router.transport_mut().node_config(node).clone();
    let mut replica = Replica::bootstrap(d.router.transport_mut(), node, &node_cfg)
        .map_err(|e| format!("bootstrap: {e}"))?;
    replica
        .catch_up(d.router.transport_mut())
        .map_err(|e| format!("catch-up: {e}"))?;
    let acked = d.logs[node].len() as u64;
    d.router.transport_mut().kill(node);

    let promote_dir = scratch.join("promoted");
    fs::create_dir_all(&promote_dir).map_err(|e| format!("mkdir: {e}"))?;

    // Replay the crashed first attempt by hand: publish a strict prefix
    // of the shard images the same way `persist_to` does…
    let (states, seq) = replica.index().dump();
    let n = states.len();
    for (i, state) in states.iter().take(n / 2).enumerate() {
        let bytes = ssj_store::encode_shard_snapshot(i, n, seq, state)
            .map_err(|e| format!("encode shard {i}: {e}"))?;
        ssj_store::persist_shipped_snapshot(&promote_dir, i, n, &bytes)
            .map_err(|e| format!("ship shard {i}: {e}"))?;
    }
    // …then die mid-stage on the next one: `atomic_write_durable` crashed
    // between create and rename leaves `shard-<k>.tmp`.
    fs::write(promote_dir.join(format!("shard-{}.tmp", n / 2)), b"torn")
        .map_err(|e| format!("write torn stage: {e}"))?;

    // The retried promotion must start from a clean staging area and
    // publish the full consistent batch.
    replica
        .persist_to(&promote_dir)
        .map_err(|e| format!("retried persist_to: {e}"))?;
    ssj_io::fswitness::assert_dir_settled(&promote_dir);
    check_promoted(&d, node, acked, &node_cfg, &promote_dir)
}

/// Shared tail of the promotion scenarios: the promoted directory must
/// recover to exactly the oracle replay of the dead node's acked history,
/// hold no `*.tmp` debris, and take writes as the new owner.
fn check_promoted(
    d: &Drive,
    node: usize,
    acked: u64,
    node_cfg: &ServerConfig,
    promote_dir: &Path,
) -> Scenario {
    let promoted_cfg = ServerConfig {
        data_dir: Some(promote_dir.to_path_buf()),
        ..node_cfg.clone()
    };
    let promoted = ShardedIndex::open(&promoted_cfg).map_err(|e| format!("open promoted: {e}"))?;
    let (got_states, got_seq) = promoted.dump();
    if got_seq < acked {
        return Err(format!(
            "promotion lost acked writes: recovered seq {got_seq} < acked {acked}"
        ));
    }
    let (want_states, want_seq) = oracle_state(&d.base_cfg, &d.logs[node], acked)?;
    if (got_states, got_seq) != (want_states, want_seq) {
        return Err(format!(
            "promoted state diverged from the acked history at seq {want_seq}"
        ));
    }
    // The swept directory must hold no tmp debris.
    let entries = fs::read_dir(promote_dir).map_err(|e| format!("read_dir: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            return Err(format!("promotion left tmp debris: {name}"));
        }
    }
    // The promoted node takes writes as the new owner.
    match promoted.insert_d(vec![7, 8, 9]) {
        ssj_serve::WriteResult::Done((id, _), _) => {
            let (ids, _, _) = promoted.query(vec![7, 8, 9]);
            if !ids.contains(&id) {
                return Err("post-promotion insert not visible".into());
            }
        }
        ssj_serve::WriteResult::StoreFailed(e) => {
            return Err(format!("post-promotion insert failed: {e}"));
        }
    }
    Ok(())
}

/// Runs every cluster scenario for one seed, appending divergences.
pub fn run_seed(seed: u64, scratch: &Path, verbose: bool, divergences: &mut Vec<Divergence>) {
    let mut rng = Rng::new(seed ^ 0x6e0d_e517);
    type ScenarioFn = Box<dyn FnMut(u64, &Path, &mut Rng) -> Scenario>;
    let scenarios: [(&'static str, ScenarioFn); 5] = [
        ("kill-mid-write", Box::new(scenario_kill_mid_write)),
        (
            "restart-all",
            Box::new(|s, p, _| scenario_restart_all(s, p)),
        ),
        (
            "promote-replica",
            Box::new(|s, p, _| scenario_promote_replica(s, p, false)),
        ),
        (
            "ship-litter",
            Box::new(|s, p, _| scenario_promote_replica(s, p, true)),
        ),
        (
            "crash-mid-promotion",
            Box::new(|s, p, _| scenario_crash_mid_promotion(s, p)),
        ),
    ];
    for (name, mut scenario) in scenarios {
        let dir = scratch.join(name);
        let _ = fs::remove_dir_all(&dir);
        match scenario(seed, &dir, &mut rng) {
            Ok(()) => {
                if verbose {
                    println!("  cluster/{name:<15} ok");
                }
            }
            Err(detail) => {
                println!("DIVERGENCE seed={seed} scenario=cluster/{name}: {detail}");
                println!("  replay: cargo xtask crashtest --replay {seed}");
                divergences.push(Divergence {
                    seed,
                    scenario: name,
                    detail,
                });
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
