//! `cargo xtask hotlint` — hot-path allocation/copy static analysis
//! (DESIGN.md §5g).
//!
//! The verification step (exact intersection after candidate generation)
//! is the hot loop of every scheme in the paper, and the serve read path
//! and WAL encoding sit on every request. This pass propagates a *hot*
//! property from a registry of hot-path roots ([`HOT_ROOTS`]) through the
//! shared name-union call graph ([`crate::callgraph`]) — everything a hot
//! function may call is hot — and reports work that does not belong in a
//! hot function:
//!
//! | id                   | finding |
//! |----------------------|---------|
//! | `hot-alloc`          | heap allocation in a hot function (`Vec::new`, `vec!`, `Box::new`, `String::from`, `format!`, `.to_vec()`, `.collect()`, …) |
//! | `hot-alloc-loop`     | the same, inside a loop body / per-item iterator closure — an allocation per element, not per call |
//! | `hot-clone`          | `.clone()` / `.cloned()` / `.to_owned()` of a (potentially) heap-owning value in a hot function |
//! | `hot-default-hasher` | bare `HashMap`/`HashSet` construction in a hot function (SipHash; use `FxHashMap`/`FxHashSet`) |
//! | `hot-blocking`       | a blocking operation (locklint's registry: fsync/write/accept/recv/send/sleep), or a call that may reach one, in a hot function |
//! | `hot-scratch`        | a `let`-bound fresh collection at body top level of a hot function — a per-call temporary that should be a caller-provided scratch buffer |
//! | `hotlint-annotation` | malformed suppression annotation (unknown rule or empty justification) |
//!
//! Like locklint, deliberate violations are suppressed in-source, next to
//! the code they justify:
//!
//! ```text
//! // hotlint: allow(hot-alloc): reason…          (this + next line)
//! // hotlint: allow(hot-scratch, fn): reason…    (whole enclosing fn)
//! ```
//!
//! Unlike locklint there is no core-scope ban: the hot paths *live* in
//! `ssj-core`, so audited, justified annotations are legal there — the
//! workspace self-test instead pins that every annotation carries a
//! written reason and that zero findings survive unannotated.
//!
//! The static pass is paired with a runtime witness
//! (`crates/core/tests/alloc_witness.rs`): a counting global allocator
//! asserting zero steady-state allocations per serve-path query and per
//! verified candidate pair — the same two-layer static + runtime design
//! as locklint and the lock witness.

pub mod extract;

use crate::callgraph::{FnKey, Graph};
use crate::locklint::SCAN_DIRS;
use crate::{rel, rs_files, LintError, Violation};
use extract::{FileExtract, HotEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Rule id: heap allocation in a hot function.
pub const HOT_ALLOC: &str = "hot-alloc";
/// Rule id: heap allocation inside a loop body of a hot function.
pub const HOT_ALLOC_LOOP: &str = "hot-alloc-loop";
/// Rule id: clone of a heap-owning value in a hot function.
pub const HOT_CLONE: &str = "hot-clone";
/// Rule id: default-hasher map construction in a hot function.
pub const HOT_HASHER: &str = "hot-default-hasher";
/// Rule id: blocking operation reachable from a hot function.
pub const HOT_BLOCKING: &str = "hot-blocking";
/// Rule id: per-call temporary that should be caller-provided scratch.
pub const HOT_SCRATCH: &str = "hot-scratch";
/// Rule id: malformed `// hotlint: allow(…)` annotation.
pub const ANNOTATION_RULE: &str = "hotlint-annotation";

/// The analysis rules an annotation may suppress.
pub const SUPPRESSIBLE_RULES: [&str; 6] = [
    HOT_ALLOC,
    HOT_ALLOC_LOOP,
    HOT_CLONE,
    HOT_HASHER,
    HOT_BLOCKING,
    HOT_SCRATCH,
];

/// Hot-path roots: function names at which the hot property starts.
/// Everything reachable caller→callee from these is hot.
///
/// The registry names the paper's inner loops and the request paths that
/// sit on every operation:
///
/// * `verify_pairs_into` — the verification step (exact predicate over
///   every candidate pair);
/// * the `similarity` kernels — the per-pair work itself;
/// * `signatures_into` — signature generation, run per set on every
///   insert/query/join;
/// * the serve read path — `query` / `query_counted` /
///   `query_candidates` answer every service request;
/// * WAL record encoding — `encode_record_into` / `encode_set` run per
///   write inside the store's critical section;
/// * `probe_partition` — the external executor's per-partition candidate
///   enumeration, run once per spill partition over every posting list;
/// * `verify_pair` / `overlap_bound` / `write_bitmap` — the pluggable
///   verification trait method, the bitmap popcount bound it checks per
///   candidate, and the per-query bitmap build on the serve read path;
/// * `route_query` — the cluster router's scatter-gather fan-out, run
///   once per distributed query (node internals behind `Transport::call`
///   are already covered by the serve roots; `call` sits in [`CALL_CUT`]).
pub const HOT_ROOTS: [&str; 19] = [
    "verify_pairs_into",
    "verify_pair",
    "overlap_bound",
    "write_bitmap",
    "intersection_size",
    "intersection_at_least",
    "hamming_distance",
    "jaccard",
    "dice",
    "cosine",
    "weighted_intersection",
    "signatures_into",
    "query",
    "query_counted",
    "query_candidates",
    "encode_record_into",
    "encode_set",
    "probe_partition",
    "route_query",
];

/// Std container/iterator/primitive method names excluded from name-union
/// call resolution. Without this cut the conservative resolver would map
/// e.g. `out.push(x)` in a hot kernel onto service-layer functions of the
/// same name and spread hotness (and findings) across unrelated
/// subsystems — the same counterbalance as locklint's `DATA_METHODS`.
/// Only *dotted* calls are cut; a bare call to a workspace function
/// always propagates.
pub const CALL_CUT: [&str; 24] = [
    "push",
    "pop",
    "extend",
    "insert",
    "remove",
    "get",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "drain",
    "load",
    "lock",
    "read",
    "write",
    "spawn",
    "join",
    "take",
    "resize",
    "truncate",
    "reserve",
    "call",
];

/// Whether a callee name follows the constructor convention (`new`,
/// `default`, `from`, `build`, `restore`, `with_*`). Constructor-named
/// calls are cut from hot propagation entirely: schemes, indexes, and
/// stores are built at setup time, and because the name-union resolver
/// maps `Foo::new(…)` onto *every* workspace `fn new`, one `Vec::new()`
/// in a kernel would otherwise drag every constructor — and everything
/// constructors call (parameter validation, error formatting) — into the
/// hot set. Allocation *at* such a call site in a hot function is still
/// caught lexically (`Vec::new`, `vec!`, …); only the hotness cascade
/// through the shared name is cut.
pub fn is_ctor_name(name: &str) -> bool {
    matches!(name, "new" | "default" | "from" | "build" | "restore") || name.starts_with("with_")
}

/// Allocating constructor type names (matched as `Type::ctor(`).
pub const ALLOC_TYPES: [&str; 6] = ["Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet"];

/// Allocating macros (matched as `name!`).
pub const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Allocating method-chain tokens.
pub const ALLOC_CHAINS: [&str; 4] = [".to_vec(", ".to_string(", ".collect::<", ".collect("];

/// Clone-flavored method-chain tokens.
pub const CLONE_CHAINS: [&str; 3] = [".clone(", ".cloned(", ".to_owned("];

/// Default-hasher map type names (word-boundary matched, so the blessed
/// `FxHashMap`/`FxHashSet` aliases never trip it).
pub const HASHER_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// A finding that an in-source annotation suppressed, kept for reporting
/// (`--json`) so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedFinding {
    /// Rule the annotation suppressed.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The annotation's written justification.
    pub reason: String,
    /// What the finding said.
    pub message: String,
}

/// Everything one `hotlint` run produced.
#[derive(Debug, Default)]
pub struct HotlintReport {
    /// Surviving (un-suppressed) findings, sorted by path/line/rule.
    pub findings: Vec<Violation>,
    /// Findings a written annotation suppressed.
    pub suppressed: Vec<SuppressedFinding>,
    /// Files analyzed.
    pub files: usize,
    /// Functions summarized.
    pub functions: usize,
    /// Functions the hot property reached.
    pub hot_functions: usize,
}

impl HotlintReport {
    /// Machine-readable report (for trend tracking next to locklint's):
    /// findings, suppressions, and scan/propagation size.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, v) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            );
        }
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{},\"message\":{}}}",
                json_str(s.rule),
                json_str(&s.path),
                s.line,
                json_str(&s.reason),
                json_str(&s.message)
            );
        }
        let _ = write!(
            out,
            "],\"files\":{},\"functions\":{},\"hot_functions\":{}}}",
            self.files, self.functions, self.hot_functions
        );
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the whole pass over the workspace at `root`.
pub fn run_hotlint(root: &Path) -> Result<HotlintReport, LintError> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        for file in rs_files(&abs)? {
            let relpath = rel(root, &file);
            let raw = crate::read(&file)?;
            files.push(extract::extract_file(&relpath, &raw));
        }
    }

    let mut findings = Vec::new();

    // Annotation hygiene: well-formed and justified. (No core-scope ban:
    // the hot paths live in core, so audited annotations are legal there.)
    for file in &files {
        for ann in &file.annotations {
            if !SUPPRESSIBLE_RULES.contains(&ann.rule.as_str()) {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: format!(
                        "annotation names unknown rule `{}` (expected one of: {})",
                        ann.rule,
                        SUPPRESSIBLE_RULES.join(", ")
                    ),
                });
            }
            if ann.reason.is_empty() {
                findings.push(Violation {
                    rule: ANNOTATION_RULE,
                    path: file.path.clone(),
                    line: ann.line,
                    message: "annotation has no written justification after `):` — \
                              suppressions are documentation, not magic"
                        .to_string(),
                });
            }
        }
    }

    let analyzed = analyze(&files);
    let functions = files.iter().map(|f| f.fns.len()).sum();

    // Partition analysis findings into suppressed vs surviving.
    let mut suppressed = Vec::new();
    for finding in analyzed.findings {
        match suppressing_annotation(&files, &finding) {
            Some(reason) => suppressed.push(SuppressedFinding {
                rule: finding.rule,
                path: finding.path,
                line: finding.line,
                reason,
                message: finding.message,
            }),
            None => findings.push(finding),
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings.dedup();
    suppressed.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    suppressed.dedup();

    Ok(HotlintReport {
        findings,
        suppressed,
        files: files.len(),
        functions,
        hot_functions: analyzed.hot_functions,
    })
}

struct Analyzed {
    findings: Vec<Violation>,
    hot_functions: usize,
}

/// Hot propagation + per-function rule evaluation.
fn analyze(files: &[FileExtract]) -> Analyzed {
    let graph = Graph::build(files.iter().enumerate().flat_map(|(fi, file)| {
        file.fns.iter().enumerate().map(move |(gi, f)| {
            let callees = f
                .events
                .iter()
                .filter_map(|ev| match ev {
                    HotEvent::Call { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect();
            ((fi, gi), f.name.clone(), callees)
        })
    }));

    // Hot set: forward closure from the root registry.
    let roots = files.iter().enumerate().flat_map(|(fi, file)| {
        file.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| HOT_ROOTS.contains(&f.name.as_str()))
            .map(move |(gi, _)| (fi, gi))
    });
    let hot = graph.reachable_from(roots);

    // may_block summaries over the whole graph, for the H5 cross-check.
    // A justified `hot-blocking` annotation at the blocking token also
    // stops propagation from it: justifying the sink (e.g. a generic
    // `impl Write` that hot callers feed an in-memory Vec) justifies its
    // callers, instead of forcing an annotation at every call site up the
    // chain. The direct finding is still generated and recorded as
    // suppressed, so the audit trail is complete.
    let mut may_block: BTreeMap<FnKey, bool> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let direct = f.events.iter().any(|ev| {
                matches!(ev, HotEvent::Block { line, .. }
                    if !blocking_annotated(file, *line))
            });
            may_block.insert((fi, gi), direct);
        }
    }
    graph.fixpoint(&mut may_block, |s, t| *s |= *t);

    let mut findings = Vec::new();
    for &(fi, gi) in &hot {
        let file = &files[fi];
        let f = &file.fns[gi];
        for ev in &f.events {
            match ev {
                HotEvent::Alloc {
                    what,
                    line,
                    in_loop,
                    top_let,
                } => {
                    let (rule, detail) = if *in_loop {
                        (HOT_ALLOC_LOOP, "allocates per element, inside a loop body")
                    } else if *top_let {
                        (
                            HOT_SCRATCH,
                            "builds a per-call temporary — thread a caller-provided \
                             scratch buffer instead",
                        )
                    } else {
                        (HOT_ALLOC, "heap-allocates")
                    };
                    findings.push(Violation {
                        rule,
                        path: file.path.clone(),
                        line: *line,
                        message: format!(
                            "hot function `{}` {} (`{}`); hot paths must reuse \
                             buffers (DESIGN.md §5g)",
                            f.name, detail, what
                        ),
                    });
                }
                HotEvent::CloneCall { what, line } => findings.push(Violation {
                    rule: HOT_CLONE,
                    path: file.path.clone(),
                    line: *line,
                    message: format!(
                        "hot function `{}` copies a (potentially) heap-owning value \
                         (`.{}()`); borrow or reuse instead",
                        f.name, what
                    ),
                }),
                HotEvent::HasherDefault { what, line } => findings.push(Violation {
                    rule: HOT_HASHER,
                    path: file.path.clone(),
                    line: *line,
                    message: format!(
                        "hot function `{}` builds a default-hasher map (`{}`); use \
                         `FxHashMap`/`FxHashSet`",
                        f.name, what
                    ),
                }),
                HotEvent::Block { desc, line } => findings.push(Violation {
                    rule: HOT_BLOCKING,
                    path: file.path.clone(),
                    line: *line,
                    message: format!(
                        "hot function `{}` performs a blocking operation ({})",
                        f.name, desc
                    ),
                }),
                HotEvent::Call { name, line } => {
                    let reaches_block = graph
                        .resolve(name)
                        .iter()
                        .any(|target| may_block.get(target).copied().unwrap_or(false));
                    if reaches_block {
                        findings.push(Violation {
                            rule: HOT_BLOCKING,
                            path: file.path.clone(),
                            line: *line,
                            message: format!(
                                "hot function `{}` calls `{}`, which may reach a \
                                 blocking operation (fsync/write/accept/recv/send/\
                                 sleep)",
                                f.name, name
                            ),
                        });
                    }
                }
            }
        }
    }

    Analyzed {
        findings,
        hot_functions: hot.len(),
    }
}

/// Whether a justified `hot-blocking` annotation covers `line` (same
/// line/next-line for line-level, enclosing function for fn-level).
fn blocking_annotated(file: &FileExtract, line: usize) -> bool {
    file.annotations.iter().any(|ann| {
        if ann.rule != HOT_BLOCKING || ann.reason.is_empty() {
            return false;
        }
        if ann.fn_level {
            file.fns
                .iter()
                .any(|f| f.contains_line(ann.line) && f.contains_line(line))
        } else {
            line == ann.line || line == ann.line + 1
        }
    })
}

/// The justification of the annotation that suppresses `finding`, if any.
///
/// A line-level annotation covers its own line and the next; an fn-level
/// annotation covers every line of the function whose body contains it.
fn suppressing_annotation(files: &[FileExtract], finding: &Violation) -> Option<String> {
    let file = files.iter().find(|f| f.path == finding.path)?;
    for ann in &file.annotations {
        if ann.rule != finding.rule || ann.reason.is_empty() {
            continue;
        }
        let covered = if ann.fn_level {
            file.fns
                .iter()
                .any(|f| f.contains_line(ann.line) && f.contains_line(finding.line))
        } else {
            finding.line == ann.line || finding.line == ann.line + 1
        };
        if covered {
            return Some(ann.reason.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(src: &str) -> Vec<Violation> {
        let files = vec![extract::extract_file("crates/core/src/lib.rs", src)];
        analyze(&files).findings
    }

    #[test]
    fn cold_functions_are_not_reported() {
        let src = "fn cold() { let v: Vec<u32> = Vec::new(); v.len(); }";
        assert!(findings_of(src).is_empty());
    }

    #[test]
    fn hot_root_allocation_classifies_by_context() {
        let src = "\
fn jaccard(a: &[u32]) -> f64 {
    let scratch = Vec::new();
    for x in a {
        let per_item = Vec::with_capacity(1);
    }
    helper(a).to_vec();
    0.0
}
fn helper(a: &[u32]) -> &[u32] { a }
";
        let f = findings_of(src);
        let rules: Vec<(&str, usize)> = f.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(HOT_SCRATCH, 2)), "{f:#?}");
        assert!(rules.contains(&(HOT_ALLOC_LOOP, 4)), "{f:#?}");
        assert!(rules.contains(&(HOT_ALLOC, 6)), "{f:#?}");
    }

    #[test]
    fn hotness_propagates_to_callees_and_blocking_is_cross_checked() {
        let src = "\
fn query(s: &S) {
    deep(s);
}
fn deep(x: &S) {
    let c = x.data.clone();
    flushy(x);
}
fn flushy(x: &S) {
    let _ = x.file.sync_all();
}
fn unrelated() { let v = vec![1]; }
";
        let f = findings_of(src);
        assert!(
            f.iter().any(|v| v.rule == HOT_CLONE && v.line == 5),
            "{f:#?}"
        );
        // deep() is hot and calls flushy() which blocks; flushy itself is
        // hot too, so both the call site and the direct site report.
        assert!(
            f.iter().any(|v| v.rule == HOT_BLOCKING && v.line == 6),
            "{f:#?}"
        );
        assert!(
            f.iter().any(|v| v.rule == HOT_BLOCKING && v.line == 9),
            "{f:#?}"
        );
        assert!(
            !f.iter().any(|v| v.line == 11),
            "unrelated() must stay cold: {f:#?}"
        );
    }

    #[test]
    fn default_hasher_fires_but_fx_alias_does_not() {
        let src = "\
fn intersection_size(a: &[u32]) -> usize {
    let m = HashMap::new();
    let f = FxHashMap::default();
    a.len()
}
";
        let f = findings_of(src);
        assert!(
            f.iter().any(|v| v.rule == HOT_HASHER && v.line == 2),
            "{f:#?}"
        );
        assert!(!f.iter().any(|v| v.line == 3), "{f:#?}");
    }

    #[test]
    fn constructor_names_do_not_carry_hotness() {
        // `query` calls Scheme::new / Scheme::with_params; the workspace
        // constructors of the same names must stay cold.
        let src = "\
fn query(s: &S) {
    let scheme = Scheme::new(s);
    let other = Scheme::with_params(s);
}
fn new(s: &S) -> Vec<u32> { let v = vec![1]; v }
fn with_params(s: &S) -> Vec<u32> { s.ids.to_vec() }
";
        let f = findings_of(src);
        assert!(f.is_empty(), "ctor-named fns must not become hot: {f:#?}");
    }

    #[test]
    fn justified_blocking_annotation_stops_may_block_propagation() {
        // `sink` carries a justified fn-level annotation (in-memory
        // writer); callers of `sink` must not report hot-blocking, while
        // the direct finding survives into the suppressed audit trail.
        let src = "\
fn encode_set(out: &mut V) {
    sink(out);
}
fn sink(out: &mut V) {
    // hotlint: allow(hot-blocking, fn): in-memory Vec sink, not file I/O.
    out.write_all(&[1]).unwrap();
}
";
        let files = vec![extract::extract_file("crates/io/src/lib.rs", src)];
        let analyzed = analyze(&files);
        assert!(
            !analyzed
                .findings
                .iter()
                .any(|v| v.rule == HOT_BLOCKING && v.line == 2),
            "annotated sink must not propagate may_block to encode_set: {:#?}",
            analyzed.findings
        );
        // The direct site still yields a finding (later partitioned into
        // the suppressed list by run_hotlint).
        assert!(
            analyzed
                .findings
                .iter()
                .any(|v| v.rule == HOT_BLOCKING && v.line == 6),
            "{:#?}",
            analyzed.findings
        );
    }
}
