//! Source → per-function event lists for the hotlint pass.
//!
//! Mirrors `locklint::extract`, on the same masked source and the shared
//! structural machinery in [`crate::callgraph`], but scans for a
//! different token vocabulary: heap allocations, clones, default-hasher
//! map construction, blocking operations (locklint's registry,
//! cross-checked), and calls for hot-property propagation.

use super::{ALLOC_CHAINS, ALLOC_MACROS, ALLOC_TYPES, CALL_CUT, CLONE_CHAINS, HASHER_TYPES};
use crate::callgraph::{
    fn_spans, is_ident, let_binding, line_of, line_start_offsets, nested_ranges, parse_annotations,
    FnSpan, ITER_MARKERS, KEYWORDS,
};
use crate::locklint::{BLOCKING_CALLS, BLOCKING_CHAINS};
use crate::scan::{mask_non_code, strip_test_regions};

pub use crate::callgraph::Annotation;

/// One occurrence inside a function body.
#[derive(Debug, Clone)]
pub enum HotEvent {
    /// A heap-allocating token.
    Alloc {
        /// What allocated (e.g. `Vec::new`, `collect`).
        what: String,
        /// 1-based source line.
        line: usize,
        /// Inside a loop body / per-item iterator closure.
        in_loop: bool,
        /// `let`-bound at body top level — a per-call temporary.
        top_let: bool,
    },
    /// `.clone()` / `.cloned()` / `.to_owned()`.
    CloneCall {
        /// The clone-flavored method used.
        what: String,
        /// 1-based source line.
        line: usize,
    },
    /// Default-hasher `HashMap`/`HashSet` construction.
    HasherDefault {
        /// The constructor path matched.
        what: String,
        /// 1-based source line.
        line: usize,
    },
    /// A blocking operation (locklint's registry).
    Block {
        /// Human description (e.g. `fsync`).
        desc: &'static str,
        /// 1-based source line.
        line: usize,
    },
    /// A call to a (possible) workspace function, for propagation.
    Call {
        /// Callee name as written.
        name: String,
        /// 1-based source line.
        line: usize,
    },
}

/// A function found in a file, with its extracted event list.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name as written after `fn`.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based first and last line of the body (inclusive).
    pub body_lines: (usize, usize),
    /// Events extracted from the body (nested fns excluded).
    pub events: Vec<HotEvent>,
}

impl FnInfo {
    /// Whether `line` falls inside this function (signature or body).
    pub fn contains_line(&self, line: usize) -> bool {
        line >= self.start_line && line <= self.body_lines.1
    }
}

/// Extraction result for one file.
#[derive(Debug)]
pub struct FileExtract {
    /// Repo-relative path.
    pub path: String,
    /// Functions with their event lists.
    pub fns: Vec<FnInfo>,
    /// Suppression annotations (from raw comment lines).
    pub annotations: Vec<Annotation>,
}

/// Masks `raw`, finds functions, and extracts events + annotations.
pub fn extract_file(relpath: &str, raw: &str) -> FileExtract {
    let masked = strip_test_regions(&mask_non_code(raw));
    let line_starts = line_start_offsets(&masked);
    let spans = fn_spans(&masked);

    let fns = spans
        .iter()
        .enumerate()
        .map(|(i, span)| {
            let nested = nested_ranges(&spans, i);
            FnInfo {
                name: span.name.clone(),
                start_line: line_of(&line_starts, span.kw_pos),
                body_lines: (
                    line_of(&line_starts, span.body_start),
                    line_of(&line_starts, span.body_end.saturating_sub(1)),
                ),
                events: scan_events(&masked, span, &nested, &line_starts),
            }
        })
        .collect();

    FileExtract {
        path: relpath.to_string(),
        fns,
        annotations: parse_annotations(raw, "hotlint"),
    }
}

fn scan_events(
    masked: &str,
    span: &FnSpan,
    skip: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<HotEvent> {
    let bytes = masked.as_bytes();
    let mut events = Vec::new();
    let mut depth = 1usize; // inside the body's `{`
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    let mut stmt_start = span.body_start + 1;
    let mut i = span.body_start + 1;
    let end = span.body_end.saturating_sub(1);

    // `in_loop` for an allocation: lexically inside a loop/closure body,
    // or downstream of a per-item iterator adapter on the same line —
    // except for `collect`, which is the chain's one-shot sink.
    let in_loop_at = |pos: usize, loop_depths: &[usize], is_collect: bool| -> bool {
        if !loop_depths.is_empty() {
            return true;
        }
        if is_collect {
            return false;
        }
        let line = line_of(line_starts, pos);
        let prefix = &masked[line_starts[line - 1]..pos];
        ITER_MARKERS.iter().any(|m| prefix.contains(m))
    };

    while i < end {
        if let Some(&(_, skip_end)) = skip.iter().find(|&&(s, e)| i >= s && i < e) {
            i = skip_end;
            stmt_start = i;
            continue;
        }
        let b = bytes[i];
        match b {
            b'{' => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
                stmt_start = i + 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                while loop_depths.last().is_some_and(|&d| d > depth) {
                    loop_depths.pop();
                }
                stmt_start = i + 1;
                i += 1;
            }
            b';' => {
                stmt_start = i + 1;
                pending_loop = false;
                i += 1;
            }
            b'.' => {
                let rest = &masked[i..end];
                if let Some(marker) = ITER_MARKERS.iter().find(|m| rest.starts_with(**m)) {
                    pending_loop = true;
                    i += marker.len();
                    continue;
                }
                if let Some(pat) = ALLOC_CHAINS.iter().find(|p| rest.starts_with(**p)) {
                    let what = pat
                        .trim_start_matches('.')
                        .trim_end_matches(['(', ':', '<']);
                    let is_collect = what == "collect";
                    events.push(HotEvent::Alloc {
                        what: what.to_string(),
                        line: line_of(line_starts, i),
                        in_loop: in_loop_at(i, &loop_depths, is_collect),
                        top_let: depth == 1 && let_binding(&masked[stmt_start..i]).is_some(),
                    });
                    i += pat.len();
                } else if let Some(pat) = CLONE_CHAINS.iter().find(|p| rest.starts_with(**p)) {
                    events.push(HotEvent::CloneCall {
                        what: pat
                            .trim_start_matches('.')
                            .trim_end_matches('(')
                            .to_string(),
                        line: line_of(line_starts, i),
                    });
                    i += pat.len();
                } else if let Some(&(pat, desc)) =
                    BLOCKING_CHAINS.iter().find(|&&(p, _)| rest.starts_with(p))
                {
                    events.push(HotEvent::Block {
                        desc,
                        line: line_of(line_starts, i),
                    });
                    i += pat.len();
                } else {
                    i += 1;
                }
            }
            _ if is_ident(b) && !b.is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) => {
                let word_start = i;
                let mut j = i;
                while j < end && is_ident(bytes[j]) {
                    j += 1;
                }
                let word = &masked[word_start..j];
                if word == "for" || word == "while" || word == "loop" {
                    pending_loop = true;
                    i = j;
                    continue;
                }
                if KEYWORDS.contains(&word) {
                    i = j;
                    continue;
                }
                let line = line_of(line_starts, word_start);
                let after = &masked[j..end];
                // Allocating constructor paths: `Vec::new(`, `Box::new(`, …
                if ALLOC_TYPES.contains(&word) {
                    if let Some(suffix) = ctor_suffix(after) {
                        events.push(HotEvent::Alloc {
                            what: format!("{word}::{suffix}"),
                            line,
                            in_loop: in_loop_at(word_start, &loop_depths, false),
                            top_let: depth == 1
                                && let_binding(&masked[stmt_start..word_start]).is_some(),
                        });
                        i = j;
                        continue;
                    }
                }
                // Default-hasher maps: `HashMap::new(`, `HashSet::default(`, …
                // (word-boundary match, so `FxHashMap::default()` is exempt).
                if HASHER_TYPES.contains(&word) {
                    if let Some(suffix) = ctor_suffix(after) {
                        events.push(HotEvent::HasherDefault {
                            what: format!("{word}::{suffix}"),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                // Next non-whitespace byte decides what this ident is.
                let mut k = j;
                while k < end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let next = if k < end { bytes[k] } else { 0 };
                if next == b'!' {
                    // Allocating macros are in scope; others are not.
                    if ALLOC_MACROS.contains(&word) {
                        events.push(HotEvent::Alloc {
                            what: format!("{word}!"),
                            line,
                            in_loop: in_loop_at(word_start, &loop_depths, false),
                            top_let: depth == 1
                                && let_binding(&masked[stmt_start..word_start]).is_some(),
                        });
                    }
                    i = j;
                    continue;
                }
                if next != b'(' {
                    i = j;
                    continue;
                }
                let dotted = word_start > 0 && bytes[word_start - 1] == b'.';
                if let Some(&(_, desc)) = BLOCKING_CALLS.iter().find(|&&(n, _)| n == word) {
                    events.push(HotEvent::Block { desc, line });
                    i = j;
                    continue;
                }
                if dotted && CALL_CUT.contains(&word) {
                    i = j;
                    continue;
                }
                // Constructor-convention names never carry hotness (see
                // `is_ctor_name`): the name-union resolver would otherwise
                // spread the hot property from one `Foo::new(…)` call onto
                // every workspace constructor.
                if super::is_ctor_name(word) {
                    i = j;
                    continue;
                }
                if word.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Type constructor / enum variant, not a workspace fn.
                    i = j;
                    continue;
                }
                events.push(HotEvent::Call {
                    name: word.to_string(),
                    line,
                });
                i = j;
            }
            _ => i += 1,
        }
    }
    events
}

/// If `after` (text following a type name) is `::ctor(`, the ctor name.
fn ctor_suffix(after: &str) -> Option<&'static str> {
    for ctor in ["new", "with_capacity", "from", "default"] {
        let whole = after
            .strip_prefix("::")
            .and_then(|r| r.strip_prefix(ctor))
            .is_some_and(|r| r.starts_with('('));
        if whole {
            return Some(ctor);
        }
    }
    None
}
