#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Workspace automation for the ssjoin repo.
//!
//! Four subcommands:
//!
//! * `cargo xtask difftest` — deterministic differential testing of every
//!   signature scheme against the naive oracle on seeded adversarial
//!   workloads (see [`difftest`] and DESIGN.md §5d);
//! * `cargo xtask crashtest` — crash-fault injection against the durable
//!   store: seeded workloads, adversarial WAL/snapshot mutations, recovery
//!   differentially compared with an in-memory oracle (see [`crashtest`]
//!   and DESIGN.md §5e);
//! * `cargo xtask lint` — a dependency-free, source-level static-analysis
//!   pass enforcing the repo's invariants that rustc and clippy cannot see
//!   (see `DESIGN.md`, "Static analysis & invariants"). Rules:
//!
//! | id                | scope                                   | forbids |
//! |-------------------|-----------------------------------------|---------|
//! | `no-panic`        | lib crates (+cli/bench via allowlist)   | `.unwrap()` / `.expect(` / `panic!` / `todo!` outside tests |
//! | `default-hasher`  | hot-path modules                        | bare `HashMap`/`HashSet` (use `FxHashMap`/`FxHashSet`) |
//! | `crate-hygiene`   | every crate root                        | missing `#![forbid(unsafe_code)]` / `#![deny(rust_2018_idioms)]` |
//! | `narrowing-cast`  | ssj-core                                | bare `as` narrowing casts on id-sized ints |
//! | `std-sync-lock`   | every workspace crate                   | `std::sync::Mutex`/`RwLock` (use `parking_lot` so the lock witness can wrap them) |
//! | `float-round-cast`| ssj-core                                | raw `.ceil()/.floor()/.round() as <int>` (use `ceil_tol`/`floor_tol` — float noise at integer boundaries shifts candidate-generation bounds by one) |
//! | `allowlist-scope` | the allowlist itself                    | entries exempting ssj-core, ssj-serve, or ssj-store |
//!
//! Suppressions live in `crates/xtask/lint_allow.toml`.
//!
//! * `cargo xtask locklint` — interprocedural lock-order and
//!   blocking-under-lock analysis over the concurrent subsystem, paired
//!   with the runtime witness in `ssj_core::lockwitness` (see [`locklint`]
//!   and DESIGN.md §5f). Suppressions are in-source annotations, not
//!   allowlist entries.
//! * `cargo xtask hotlint` — hot-path allocation/copy analysis over the
//!   same call-graph engine, paired with the counting-allocator witness
//!   (see [`hotlint`] and DESIGN.md §5g).
//! * `cargo xtask durlint` — crash-consistency protocol analysis (fsync
//!   before rename, directory fsync after, ack-implies-WAL-sync, staged
//!   tmp sweeps), paired with the runtime fs-order witness in
//!   `ssj_io::fswitness` (see [`durlint`] and DESIGN.md §5k).

pub mod allowlist;
pub mod benchdiff;
pub mod callgraph;
pub mod crashtest;
pub mod difftest;
pub mod durlint;
pub mod hotlint;
pub mod locklint;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`no-panic`, `default-hasher`, …).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Explanation and suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Engine failure (I/O or a malformed allowlist).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problem while walking or reading sources.
    Io(PathBuf, io::Error),
    /// `lint_allow.toml` failed to parse.
    Allowlist(allowlist::ParseError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(path, err) => write!(f, "{}: {err}", path.display()),
            Self::Allowlist(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose library source falls under the `no-panic` rule.
///
/// `cli` and `bench` are scanned too, but ship with allowlist entries —
/// the ISSUE-level policy is "library crates must not panic; binaries may,
/// with a recorded reason". None of `ssj-core`, `ssj-serve`, or
/// `ssj-store` may ever appear in the allowlist.
const NO_PANIC_DIRS: [&str; 11] = [
    "crates/core/src",
    "crates/baselines/src",
    "crates/io/src",
    "crates/text/src",
    "crates/minidb/src",
    "crates/cli/src",
    "crates/bench/src",
    "crates/server/src",
    "crates/store/src",
    "crates/extern/src",
    "crates/cluster/src",
];

/// Hot-path modules where default hashers are banned (`default-hasher`).
const HOT_PATH_FILES: [&str; 6] = [
    "crates/core/src/index.rs",
    "crates/core/src/join.rs",
    "crates/core/src/sketch.rs",
    "crates/baselines/src/prefix_filter.rs",
    "crates/baselines/src/probe_count.rs",
    "crates/server/src/service.rs",
];

/// Directories holding crate roots for the `crate-hygiene` rule: the
/// umbrella package plus every `crates/*` and `compat/*` member.
const CRATE_ROOT_PARENTS: [&str; 2] = ["crates", "compat"];

/// Directory scanned by the `narrowing-cast` rule.
const CORE_SRC: &str = "crates/core/src";

/// Repo-relative location of the allowlist.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint_allow.toml";

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| LintError::Io(d.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(d.clone(), e))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

/// `path` relative to `root`, with `/` separators.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every rule over the workspace at `root` and returns the surviving
/// (non-allowlisted) violations, sorted by path then line.
pub fn run_lint(root: &Path) -> Result<Vec<Violation>, LintError> {
    let allow = load_allowlist(root)?;
    let mut violations = Vec::new();

    // Guard: the allowlist must not carve holes in ssj-core, ssj-serve, or
    // ssj-store (the serving and persistence layers were added with a
    // zero-exemption policy — a panic in the store is a durability bug).
    for entry in &allow.entries {
        for (dir, name) in [
            ("crates/core", "ssj-core"),
            ("crates/server", "ssj-serve"),
            ("crates/store", "ssj-store"),
            ("crates/extern", "ssj-extern"),
            ("crates/cluster", "ssj-cluster"),
        ] {
            if entry.path.starts_with(dir) {
                violations.push(Violation {
                    rule: rules::ALLOWLIST_SCOPE,
                    path: ALLOWLIST_PATH.to_string(),
                    line: 1,
                    message: format!(
                        "allowlist entry `{}` exempts {name}; {name} must satisfy \
                         every rule outright",
                        entry.path
                    ),
                });
            }
        }
    }

    // L1: no-panic over library source trees.
    for dir in NO_PANIC_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        for file in rs_files(&abs)? {
            let relpath = rel(root, &file);
            let lines = scan::rule_lines(&read(&file)?);
            violations.extend(rules::check_no_panic(&relpath, &lines));
        }
    }

    // L2: default hashers in hot-path modules.
    for relpath in HOT_PATH_FILES {
        let abs = root.join(relpath);
        if !abs.is_file() {
            continue;
        }
        let lines = scan::rule_lines(&read(&abs)?);
        violations.extend(rules::check_default_hasher(relpath, &lines));
    }

    // L3: hygiene attributes on every crate root.
    for lib in crate_roots(root)? {
        let relpath = rel(root, &lib);
        let masked = scan::mask_non_code(&read(&lib)?);
        violations.extend(rules::check_crate_hygiene(&relpath, &masked));
    }

    // L4 + L6: narrowing casts and raw float-rounding casts in ssj-core.
    let core = root.join(CORE_SRC);
    if core.is_dir() {
        for file in rs_files(&core)? {
            let relpath = rel(root, &file);
            let lines = scan::rule_lines(&read(&file)?);
            violations.extend(rules::check_narrowing_cast(&relpath, &lines));
            violations.extend(rules::check_float_round_cast(&relpath, &lines));
        }
    }

    // L5: std::sync locks anywhere under crates/ (compat/ is exempt by
    // construction — the parking_lot shim there wraps std::sync, which is
    // exactly the one place that's supposed to).
    for src in crate_src_dirs(root)? {
        for file in rs_files(&src)? {
            let relpath = rel(root, &file);
            let lines = scan::rule_lines(&read(&file)?);
            violations.extend(rules::check_std_sync(&relpath, &lines));
        }
    }

    violations.retain(|v| !allow.permits(v.rule, &v.path));
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(violations)
}

/// Loads `crates/xtask/lint_allow.toml`; absent file means no suppressions.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, LintError> {
    let path = root.join(ALLOWLIST_PATH);
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    Allowlist::parse(&read(&path)?).map_err(LintError::Allowlist)
}

/// Every `crates/<member>/src` directory, sorted (for the L5 scan).
fn crate_src_dirs(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let dir = root.join("crates");
    if !dir.is_dir() {
        return Ok(out);
    }
    let entries = fs::read_dir(&dir).map_err(|e| LintError::Io(dir.clone(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.clone(), e))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            out.push(src);
        }
    }
    out.sort();
    Ok(out)
}

/// Every crate-root `lib.rs` in the workspace: `src/lib.rs` of the umbrella
/// package plus `<parent>/<member>/src/lib.rs` for crates/ and compat/.
fn crate_roots(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let umbrella = root.join("src/lib.rs");
    if umbrella.is_file() {
        out.push(umbrella);
    }
    for parent in CRATE_ROOT_PARENTS {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        let entries = fs::read_dir(&dir).map_err(|e| LintError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(dir.clone(), e))?;
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                out.push(lib);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Walks upward from `start` to the workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
