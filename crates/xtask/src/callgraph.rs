//! Shared name-union call-graph engine for the repo's interprocedural
//! static-analysis passes (`locklint`, `hotlint`).
//!
//! Both passes work the same way: masked source (see `scan.rs`) is split
//! into function spans, each body is scanned into a pass-specific event
//! list, and per-function facts propagate over a *name-resolved* call
//! graph — a call to `flush` is assumed to possibly reach every workspace
//! function named `flush`. That is deliberately conservative (no type
//! information is available) and each pass carries a registry of method
//! names that cut the resolution where the conservatism would drown the
//! signal.
//!
//! This module owns everything the passes share:
//!
//! * function-span discovery over masked source ([`fn_spans`]),
//! * byte-offset → line mapping ([`line_start_offsets`], [`line_of`]),
//! * token helpers ([`is_ident`], [`KEYWORDS`], [`ITER_MARKERS`],
//!   [`let_binding`], [`single_ident_arg`]),
//! * in-source suppression annotations, parameterized by tool name
//!   ([`parse_annotations`]),
//! * the name-union [`Graph`] with summary [`Graph::fixpoint`]
//!   propagation and forward-reachability ([`Graph::reachable_from`]).
//!
//! The lock-specific event model, registries, and replay stay in
//! `locklint`; the allocation rules and hot-root registry in `hotlint`.

use std::collections::{BTreeMap, BTreeSet};

/// Keywords that look like call/identifier tokens but never are.
pub const KEYWORDS: [&str; 22] = [
    "if", "else", "match", "for", "while", "loop", "return", "let", "fn", "in", "as", "move",
    "mut", "ref", "break", "continue", "where", "impl", "dyn", "unsafe", "await", "box",
];

/// Iterator-adapter tokens that open a per-item closure: code inside runs
/// once per element, i.e. in a loop context.
pub const ITER_MARKERS: [&str; 5] = [
    ".map(",
    ".for_each(",
    ".filter(",
    ".flat_map(",
    ".filter_map(",
];

/// ASCII identifier byte.
pub fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets at which each line starts (line 1 at offset 0).
pub fn line_start_offsets(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte offset `pos`.
pub fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

/// Byte span of one `fn` in masked source.
#[derive(Debug)]
pub struct FnSpan {
    /// Function name as written after `fn`.
    pub name: String,
    /// Offset of the `fn` keyword.
    pub kw_pos: usize,
    /// Offset of the body's `{`.
    pub body_start: usize,
    /// Offset one past the body's `}`.
    pub body_end: usize,
}

/// Finds every function definition in masked source, including nested
/// fns (which get their own spans; enclosing scans skip their ranges —
/// see [`nested_ranges`]). `fn(` pointer types and bodyless trait
/// declarations are ignored.
pub fn fn_spans(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let boundary_before = i == 0 || !is_ident(bytes[i - 1]);
        let boundary_after = i + 2 >= bytes.len() || !is_ident(bytes[i + 2]);
        if !(bytes[i] == b'f' && bytes[i + 1] == b'n' && boundary_before && boundary_after) {
            i += 1;
            continue;
        }
        let kw_pos = i;
        let mut j = i + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            // `fn(` pointer type or `Fn` trait syntax — not a definition.
            i += 2;
            continue;
        }
        let name = masked[name_start..j].to_string();
        // Find the body `{`, or `;` for a bodyless trait declaration.
        let mut body_start = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_start = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(body_start) = body_start else {
            i = j + 1;
            continue;
        };
        // Match braces to the end of the body.
        let mut depth = 0usize;
        let mut k = body_start;
        let mut body_end = bytes.len();
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        body_end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push(FnSpan {
            name,
            kw_pos,
            body_start,
            body_end,
        });
        // Continue scanning *inside* the body too: nested fns get their
        // own spans, and the enclosing scan skips their ranges.
        i = body_start + 1;
    }
    spans
}

/// Byte ranges of fns nested inside `spans[i]`, for the enclosing body
/// scan to skip (nested fns are analyzed as their own functions and
/// resolved through the call graph).
pub fn nested_ranges(spans: &[FnSpan], i: usize) -> Vec<(usize, usize)> {
    let span = &spans[i];
    spans
        .iter()
        .enumerate()
        .filter(|&(j, s)| j != i && s.kw_pos > span.body_start && s.body_end <= span.body_end)
        .map(|(_, s)| (s.kw_pos, s.body_end))
        .collect()
}

/// `let [mut] <ident> … = …` → the bound name.
pub fn let_binding(stmt_prefix: &str) -> Option<String> {
    let trimmed = stmt_prefix.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .bytes()
        .position(|b| !is_ident(b))
        .unwrap_or(rest.len());
    if end == 0 || !rest[end..].contains('=') {
        return None;
    }
    Some(rest[..end].to_string())
}

/// For `f(<ident>)`: the ident, if the argument list is exactly one
/// identifier (used for `drop(guard)` detection).
pub fn single_ident_arg(masked: &str, open_paren: usize, end: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut j = open_paren + 1;
    let arg_start = j;
    while j < end && bytes[j] != b')' && bytes[j] != b'\n' {
        j += 1;
    }
    if j >= end || bytes[j] != b')' {
        return None;
    }
    let arg = masked[arg_start..j].trim();
    if !arg.is_empty()
        && arg.bytes().all(is_ident)
        && !arg.bytes().next().is_some_and(|b| b.is_ascii_digit())
    {
        Some(arg.to_string())
    } else {
        None
    }
}

/// A `// <tool>: allow(…)` suppression found in the raw source.
#[derive(Debug)]
pub struct Annotation {
    /// Rule name inside `allow(…)`.
    pub rule: String,
    /// `allow(<rule>, fn)` — covers the whole enclosing function.
    pub fn_level: bool,
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// Justification text after `):`, trimmed.
    pub reason: String,
}

/// Parses `// <tool>: allow(<rule>[, fn]): reason` from raw lines.
/// A malformed annotation (no closing paren) is emitted with an empty
/// rule so the pass's hygiene check can report it.
pub fn parse_annotations(raw: &str, tool: &str) -> Vec<Annotation> {
    let marker = format!("{tool}: allow(");
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(at) = line.find(&marker) else {
            continue;
        };
        // Only honor (and only police) real comment lines.
        if !line[..at].contains("//") {
            continue;
        }
        let args_start = at + marker.len();
        let Some(close) = line[args_start..].find(')') else {
            out.push(Annotation {
                rule: String::new(),
                fn_level: false,
                line: idx + 1,
                reason: String::new(),
            });
            continue;
        };
        let args = &line[args_start..args_start + close];
        let (rule, fn_level) = match args.split_once(',') {
            Some((r, scope)) => (r.trim(), scope.trim() == "fn"),
            None => (args.trim(), false),
        };
        let after = &line[args_start + close + 1..];
        let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
        out.push(Annotation {
            rule: rule.to_string(),
            fn_level,
            line: idx + 1,
            reason,
        });
    }
    out
}

/// A function's identity across the scanned file set: `(file index,
/// fn index within the file)`.
pub type FnKey = (usize, usize);

/// Name-union call graph over all scanned functions.
///
/// Built once from `(key, name, callee names)` triples; resolution maps a
/// callee name to *every* function with that name.
#[derive(Debug, Default)]
pub struct Graph {
    by_name: BTreeMap<String, Vec<FnKey>>,
    calls: BTreeMap<FnKey, Vec<String>>,
}

impl Graph {
    /// Builds the graph. `callees` may contain duplicates; they are kept
    /// (harmless for fixpoints) to stay cheap.
    pub fn build(fns: impl Iterator<Item = (FnKey, String, Vec<String>)>) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnKey>> = BTreeMap::new();
        let mut calls = BTreeMap::new();
        for (key, name, callees) in fns {
            by_name.entry(name).or_default().push(key);
            calls.insert(key, callees);
        }
        Graph { by_name, calls }
    }

    /// Every function the name may resolve to.
    pub fn resolve(&self, name: &str) -> &[FnKey] {
        self.by_name.get(name).map_or(&[][..], |v| v)
    }

    /// Callee names recorded for `key`.
    pub fn calls_of(&self, key: FnKey) -> &[String] {
        self.calls.get(&key).map_or(&[][..], |v| v)
    }

    /// Propagates per-function summaries to a fixpoint: each function's
    /// summary absorbs (via `merge`) the summaries of everything its
    /// calls may resolve to. Self-targets are skipped (a direct
    /// recursion adds nothing to its own summary). `merge` must be
    /// monotone (only ever grow the summary) for termination.
    pub fn fixpoint<S: Clone + PartialEq>(
        &self,
        summaries: &mut BTreeMap<FnKey, S>,
        merge: impl Fn(&mut S, &S),
    ) {
        loop {
            let mut changed = false;
            let keys: Vec<FnKey> = summaries.keys().copied().collect();
            for key in keys {
                let Some(mut s) = summaries.get(&key).cloned() else {
                    continue;
                };
                for name in self.calls_of(key) {
                    for &target in self.resolve(name) {
                        if target == key {
                            continue;
                        }
                        if let Some(t) = summaries.get(&target) {
                            merge(&mut s, t);
                        }
                    }
                }
                if summaries.get(&key) != Some(&s) {
                    summaries.insert(key, s);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Forward closure: every function reachable caller→callee from the
    /// given roots (roots included).
    pub fn reachable_from(&self, roots: impl Iterator<Item = FnKey>) -> BTreeSet<FnKey> {
        let mut seen: BTreeSet<FnKey> = roots.collect();
        let mut work: Vec<FnKey> = seen.iter().copied().collect();
        while let Some(key) = work.pop() {
            for name in self.calls_of(key) {
                for &target in self.resolve(name) {
                    if seen.insert(target) {
                        work.push(target);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fn_spans_and_skips_pointer_types() {
        let src = "fn outer() { inner(); fn inner() {} }\nstruct S(fn(u32) -> u32);\nfn tail() {}";
        let spans = fn_spans(src);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "tail"]);
        let nested = nested_ranges(&spans, 0);
        assert_eq!(nested.len(), 1);
        assert!(nested[0].0 > spans[0].body_start && nested[0].1 <= spans[0].body_end);
    }

    #[test]
    fn line_mapping_round_trips() {
        let src = "a\nbb\nccc\n";
        let starts = line_start_offsets(src);
        assert_eq!(line_of(&starts, 0), 1);
        assert_eq!(line_of(&starts, 2), 2);
        assert_eq!(line_of(&starts, 5), 3);
    }

    #[test]
    fn parses_tool_specific_annotations() {
        let raw = "// hotlint: allow(hot-alloc): bounded by shard count\n\
                   // locklint: allow(lock-order, fn): audited\n\
                   // hotlint: allow(broken";
        let hot = parse_annotations(raw, "hotlint");
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].rule, "hot-alloc");
        assert!(!hot[0].fn_level);
        assert_eq!(hot[0].reason, "bounded by shard count");
        assert_eq!(hot[1].rule, "", "malformed annotation surfaces");
        let lock = parse_annotations(raw, "locklint");
        assert_eq!(lock.len(), 1);
        assert!(lock[0].fn_level);
    }

    #[test]
    fn fixpoint_and_reachability_propagate_over_name_union() {
        // a -> b -> c, and an unrelated d also named "b" is unioned in.
        let graph = Graph::build(
            vec![
                ((0, 0), "a".to_string(), vec!["b".to_string()]),
                ((0, 1), "b".to_string(), vec!["c".to_string()]),
                ((1, 0), "b".to_string(), vec![]),
                ((1, 1), "c".to_string(), vec![]),
            ]
            .into_iter(),
        );
        let mut summaries: BTreeMap<FnKey, bool> = BTreeMap::new();
        summaries.insert((0, 0), false);
        summaries.insert((0, 1), false);
        summaries.insert((1, 0), false);
        summaries.insert((1, 1), true); // c has the property directly
        graph.fixpoint(&mut summaries, |s, t| *s |= *t);
        assert!(summaries[&(0, 1)], "b absorbs c");
        assert!(summaries[&(0, 0)], "a absorbs b absorbs c");
        assert!(!summaries[&(1, 0)], "the other `b` stays clean");

        let hot = graph.reachable_from([(0, 0)].into_iter());
        // Name union: `a` calls *both* functions named b, then c.
        assert_eq!(hot.len(), 4);
    }
}
