//! Source masking: turns Rust source into "code-only" lines.
//!
//! The lint rules are token-level, so before matching we blank out (replace
//! with spaces) everything that is not executable library code:
//!
//! * line comments (`//`, `///`, `//!`) and (nested) block comments,
//! * string literals (plain, raw `r"…"`/`r#"…"#`) and char literals,
//! * regions gated behind `#[cfg(test)]` / `#[test]` attributes — the
//!   repo-wide convention for unit-test modules, which the panic rules
//!   deliberately exempt.
//!
//! Masking preserves line structure byte-for-byte (each masked character
//! becomes a space), so reported line numbers match the original file.

/// Masks comments, strings, and char literals with spaces.
pub fn mask_non_code(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Emits `b` if it is a newline (preserving layout), else a space.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Rust block comments nest.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                blank(&mut out, b);
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            blank(&mut out, bytes[i]);
                            if i + 1 < bytes.len() {
                                blank(&mut out, bytes[i + 1]);
                            }
                            i += 2;
                        }
                        b'"' => {
                            blank(&mut out, bytes[i]);
                            i += 1;
                            break;
                        }
                        c => {
                            blank(&mut out, c);
                            i += 1;
                        }
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                // r"…", r#"…"#, r##"…"##, …
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // Opening quote.
                blank(&mut out, bytes[i]);
                for &bk in &bytes[i + 1..=j] {
                    blank(&mut out, bk);
                }
                i = j + 1;
                'raw: while i < bytes.len() {
                    if bytes[i] == b'"' {
                        let mut close = 0usize;
                        while close < hashes && bytes.get(i + 1 + close) == Some(&b'#') {
                            close += 1;
                        }
                        if close == hashes {
                            for &bk in &bytes[i..=i + hashes] {
                                blank(&mut out, bk);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Distinguish char literals from lifetimes: a char literal
                // closes with ' within a few bytes; a lifetime does not.
                if let Some(len) = char_literal_len(bytes, i) {
                    for &bk in &bytes[i..i + len] {
                        blank(&mut out, bk);
                    }
                    i += len;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }

    // Masking only replaces bytes with spaces/newlines, so this cannot
    // split a UTF-8 sequence mid-way for ASCII-significant tokens; any
    // multibyte character outside strings/comments passes through intact.
    String::from_utf8(out).unwrap_or_default()
}

/// True when `bytes[i..]` starts a raw string (`r"` / `r#…"`), and `r` is
/// not part of a longer identifier like `for` or `r2`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Length of a char literal starting at `i`, or `None` for lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote (bounded).
        let end = (i + 12).min(bytes.len());
        bytes[i + 2..end]
            .iter()
            .position(|&b| b == b'\'')
            .map(|off| off + 3)
    } else if bytes.get(i + 2) == Some(&b'\'') {
        Some(3)
    } else {
        // Multibyte char literal ('→') or lifetime. Look for a closing
        // quote within one UTF-8 character's worth of bytes.
        let len = match next {
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            0xf0..=0xf7 => 4,
            _ => return None, // ASCII not followed by ' ⇒ lifetime
        };
        (bytes.get(i + 1 + len) == Some(&b'\'')).then_some(len + 2)
    }
}

/// Blanks every region gated behind `#[cfg(test)]` or `#[test]` in
/// already-masked source, so the rules only see non-test library code.
///
/// The scanner tracks brace depth: after a test attribute, everything up to
/// the end of the next item (its matching `}` — or `;` for brace-less
/// items) is blanked.
pub fn strip_test_regions(masked: &str) -> String {
    let bytes = masked.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    while i < bytes.len() {
        if starts_with_test_attr(&bytes[i..]) {
            // Blank from the attribute through the gated item.
            let mut depth = 0usize;
            let mut entered = false;
            while i < bytes.len() {
                let b = bytes[i];
                match b {
                    b'{' => {
                        depth += 1;
                        entered = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
                if entered && depth == 0 {
                    break;
                }
                if !entered && b == b';' {
                    break; // attribute gated a brace-less item
                }
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Does `rest` begin with `#[cfg(test)]`, `#[cfg(all(test, …))]`, or
/// `#[test]` (whitespace-insensitive)?
fn starts_with_test_attr(rest: &[u8]) -> bool {
    let compact: Vec<u8> = rest
        .iter()
        .take(48)
        .filter(|b| !b.is_ascii_whitespace())
        .copied()
        .collect();
    compact.starts_with(b"#[cfg(test)]")
        || compact.starts_with(b"#[cfg(all(test")
        || compact.starts_with(b"#[test]")
}

/// Fully prepared lines for rule matching: masked and test-stripped.
pub fn rule_lines(source: &str) -> Vec<String> {
    strip_test_regions(&mask_non_code(source))
        .lines()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // unwrap()\n/* panic! */ let b = 2;\n";
        let m = mask_non_code(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still */ code()";
        let m = mask_non_code(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("still"));
        assert!(m.contains("code()"));
    }

    #[test]
    fn masks_strings_and_chars_but_not_lifetimes() {
        let src = r#"let s = "panic!(x)"; let c = '"'; fn f<'a>(x: &'a str) {} let e = '\n';"#;
        let m = mask_non_code(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.contains("\\n"));
    }

    #[test]
    fn masks_raw_strings() {
        let src = r###"let s = r#"has "quotes" and unwrap()"#; after()"###;
        let m = mask_non_code(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("after()"));
        // `r` as identifier prefix must not trigger raw-string mode.
        let src2 = "for x in 0..r\"lit\".len() {}";
        assert!(mask_non_code(src2).contains("for x in 0.."));
    }

    #[test]
    fn strips_cfg_test_modules() {
        let src = "fn lib() { x.unwrap_or(0); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lines = rule_lines(src);
        let joined = lines.join("\n");
        assert!(!joined.contains(".unwrap()"));
        assert!(joined.contains("unwrap_or"));
        assert!(joined.contains("fn tail()"));
    }

    #[test]
    fn strips_test_fns_and_braceless_items() {
        let src = "#[test]\nfn t() { panic!(); }\nfn real() {}\n#[cfg(test)]\nuse foo::bar;\nfn also_real() {}\n";
        let joined = rule_lines(src).join("\n");
        assert!(!joined.contains("panic!"));
        assert!(!joined.contains("foo::bar"));
        assert!(joined.contains("fn real()"));
        assert!(joined.contains("fn also_real()"));
    }

    #[test]
    fn line_numbers_are_preserved() {
        let src = "a\n\"two\nlines? no: strings stay on one line in rust\"\nb\n";
        // Even with multi-line strings the newline bytes inside are kept.
        assert_eq!(mask_non_code(src).lines().count(), src.lines().count());
    }
}
