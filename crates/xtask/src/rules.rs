//! The five repo-specific lint rules (L1–L5) plus the allowlist-scope guard.
//!
//! Each rule is a pure function over `(repo-relative path, prepared lines)`
//! so the unit tests can drive them on synthetic sources without touching
//! the filesystem.

use crate::Violation;

/// L1: no panicking escape hatches in non-test library code.
pub const NO_PANIC: &str = "no-panic";
/// L2: no default-hasher `HashMap`/`HashSet` in hot-path modules.
pub const DEFAULT_HASHER: &str = "default-hasher";
/// L3: crate roots must carry the hygiene attributes.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// L4: no bare `as` narrowing casts on id-sized integers in ssj-core.
pub const NARROWING_CAST: &str = "narrowing-cast";
/// L5: no `std::sync` locks anywhere in workspace crates.
pub const STD_SYNC: &str = "std-sync-lock";
/// L6: no raw `.ceil()/.floor()/.round() as <int>` in ssj-core.
pub const FLOAT_ROUND_CAST: &str = "float-round-cast";
/// Guard: the allowlist must never exempt ssj-core.
pub const ALLOWLIST_SCOPE: &str = "allowlist-scope";

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `line[at..]` starts the token `token` on a word boundary
/// (the byte before `at` is not an identifier byte).
fn on_boundary(line: &str, at: usize) -> bool {
    at == 0 || !is_ident(line.as_bytes()[at - 1])
}

/// Byte offsets of every word-boundary occurrence of `needle` in `line`.
fn boundary_matches<'a>(line: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    line.match_indices(needle)
        .filter(|(at, _)| on_boundary(line, *at))
        .map(|(at, _)| at)
}

/// L1 scan: flags `.unwrap()`, `.expect(`, `panic!`, and `todo!`.
///
/// `assert!`/`debug_assert!` stay legal — they are the sanctioned way to
/// state invariants (and the invariant layer is built on them).
pub fn check_no_panic(path: &str, lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut flag = |message: String| {
            out.push(Violation {
                rule: NO_PANIC,
                path: path.to_string(),
                line: idx + 1,
                message,
            });
        };
        for (at, _) in line.match_indices(".unwrap") {
            if line[at + ".unwrap".len()..].starts_with("()") {
                flag("`.unwrap()` in library code; return `Result` instead".to_string());
            }
        }
        for (at, _) in line.match_indices(".expect") {
            if line[at + ".expect".len()..].starts_with('(') {
                flag("`.expect(..)` in library code; return `Result` instead".to_string());
            }
        }
        for macro_name in ["panic", "todo"] {
            for at in boundary_matches(line, macro_name) {
                if line[at + macro_name.len()..].starts_with('!') {
                    flag(format!(
                        "`{macro_name}!` in library code; surface an `SsjError` instead"
                    ));
                }
            }
        }
    }
    out
}

/// L2 scan: flags bare `HashMap`/`HashSet` tokens.
///
/// `FxHashMap`/`FxHashSet` (the seeded, deterministic hashers from
/// `ssj_core::hash`) do not match — the `Fx` prefix breaks the word
/// boundary. Qualified uses like `std::collections::HashMap` DO match,
/// which is the point.
pub fn check_default_hasher(path: &str, lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for token in ["HashMap", "HashSet"] {
            for at in boundary_matches(line, token) {
                // Reject trailing identifier bytes too (`HashMapLike`).
                let end = at + token.len();
                if line.as_bytes().get(end).copied().is_some_and(is_ident) {
                    continue;
                }
                out.push(Violation {
                    rule: DEFAULT_HASHER,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "default-hasher `{token}` in a hot-path module; use \
                         `Fx{token}` from `ssj_core::hash` for deterministic, \
                         seeded hashing"
                    ),
                });
            }
        }
    }
    out
}

/// L3 scan: a crate root must carry both hygiene attributes.
///
/// Operates on masked (but not test-stripped) source; matching is
/// whitespace-insensitive so `#![forbid(unsafe_code)]` and
/// `#! [ forbid ( unsafe_code ) ]` both count.
pub fn check_crate_hygiene(path: &str, masked_source: &str) -> Vec<Violation> {
    let compact: String = masked_source
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    let mut out = Vec::new();
    for needle in ["#![forbid(unsafe_code)]", "#![deny(rust_2018_idioms)]"] {
        if !compact.contains(needle) {
            out.push(Violation {
                rule: CRATE_HYGIENE,
                path: path.to_string(),
                line: 1,
                message: format!("crate root is missing `{needle}`"),
            });
        }
    }
    out
}

/// Integer types whose `as` casts L4 treats as narrowing, plus the id
/// aliases from `ssj_core::set` (both are u32, but the alias names are what
/// the code actually writes).
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "SetId", "ElementId"];

/// L4 scan: flags `<expr> as <narrow type>` in ssj-core.
///
/// Widening casts (`as u64`, `as usize`, `as f64`) are fine; narrowing must
/// go through `try_from` (or the checked helpers in `ssj_core::cast`) so
/// overflow is an error, not a silent wrap.
pub fn check_narrowing_cast(path: &str, lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for at in boundary_matches(line, "as") {
            let rest = &line[at + 2..];
            // The cast target is the next identifier after whitespace.
            let trimmed = rest.trim_start();
            if trimmed.len() == rest.len() {
                continue; // `as` glued to something: not the keyword
            }
            let target: String = trimmed
                .bytes()
                .take_while(|&b| is_ident(b))
                .map(char::from)
                .collect();
            if NARROW_TARGETS.contains(&target.as_str()) {
                out.push(Violation {
                    rule: NARROWING_CAST,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "bare `as {target}` narrowing cast; use `{target}::try_from` \
                         or the checked helpers in `ssj_core::cast`"
                    ),
                });
            }
        }
    }
    out
}

/// Lock-ish type names under `std::sync` that L5 forbids. Matched as
/// word-start prefixes so guard types (`MutexGuard`, `RwLockReadGuard`)
/// count as uses of the lock too.
const STD_SYNC_LOCKS: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// L5 scan: flags `std::sync` lock types (qualified or imported).
///
/// The workspace standardizes on `parking_lot` locks: they are what the
/// `ssj_core::lockwitness` discipline layer wraps, and they don't carry
/// poisoning state that would leak `PoisonError` through library APIs.
/// `std::sync::Arc`, atomics, and `mpsc` channels remain fine — the rule
/// only fires on lines that both reference `std::sync` and name a lock
/// type.
pub fn check_std_sync(path: &str, lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if !boundary_matches(line, "std").any(|at| line[at..].starts_with("std::sync::")) {
            continue;
        }
        for token in STD_SYNC_LOCKS {
            for _ in boundary_matches(line, token) {
                out.push(Violation {
                    rule: STD_SYNC,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`std::sync::{token}` in a workspace crate; use the \
                         `parking_lot` equivalent (wrapped by \
                         `ssj_core::lockwitness` where the lock is registered) \
                         — std locks poison and bypass the lock-discipline \
                         witness"
                    ),
                });
            }
        }
    }
    out
}

/// Integer cast targets the L6 scan treats as a rounding boundary.
const INT_TARGETS: [&str; 12] = [
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "SetId",
    "ElementId",
];

/// L6 scan: flags `.ceil() as <int>`, `.floor() as <int>`, and
/// `.round() as <int>` in ssj-core.
///
/// The narrowing-cast rule (L4) catches integer truncation but not float
/// rounding: `(gamma * size as f64).ceil() as usize` silently shifts by
/// one whenever binary noise lands the product a ulp across an integer
/// boundary (0.07·100 = 7.000000000000001), which in candidate generation
/// drops valid join partners. Exactness-relevant rounding must go through
/// `ceil_tol` / `floor_tol` in `ssj_core::predicate`, which absorb the
/// noise before truncating.
pub fn check_float_round_cast(path: &str, lines: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for method in ["ceil", "floor", "round"] {
            let needle = format!(".{method}() as ");
            for (at, _) in line.match_indices(&needle) {
                let rest = &line[at + needle.len()..];
                let target: String = rest
                    .bytes()
                    .take_while(|&b| is_ident(b))
                    .map(char::from)
                    .collect();
                if INT_TARGETS.contains(&target.as_str()) {
                    out.push(Violation {
                        rule: FLOAT_ROUND_CAST,
                        path: path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "raw `.{method}() as {target}` on a float; use `ceil_tol` / \
                             `floor_tol` from `ssj_core::predicate` so float noise at \
                             integer boundaries cannot shift the result by one"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::rule_lines;

    fn lines(src: &str) -> Vec<String> {
        rule_lines(src)
    }

    #[test]
    fn no_panic_flags_all_four_forms() {
        let src = "fn f() {\n  a.unwrap();\n  b.expect(\"msg\");\n  panic!(\"x\");\n  todo!()\n}\n";
        let v = check_no_panic("x.rs", &lines(src));
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[3].line, 5);
        assert!(v.iter().all(|v| v.rule == NO_PANIC));
    }

    #[test]
    fn no_panic_ignores_non_panicking_lookalikes() {
        let src = "fn f() {\n  a.unwrap_or(0);\n  a.unwrap_or_default();\n  c.unwrap_or_else(|| 1);\n  debug_assert!(x);\n  assert_eq!(a, b);\n  my_panic_free();\n}\n";
        assert!(check_no_panic("x.rs", &lines(src)).is_empty());
    }

    #[test]
    fn no_panic_skips_tests_comments_and_strings() {
        let src = "fn f() { /* a.unwrap() */ let s = \"panic!\"; }\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(check_no_panic("x.rs", &lines(src)).is_empty());
    }

    #[test]
    fn default_hasher_flags_bare_and_qualified_names() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let s = std::collections::HashSet::<u32>::new(); }\n";
        let v = check_default_hasher("x.rs", &lines(src));
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|v| v.rule == DEFAULT_HASHER));
    }

    #[test]
    fn default_hasher_permits_fx_variants() {
        let src = "use crate::hash::{FxHashMap, FxHashSet};\nfn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); let s = FxHashSet::<u32>::default(); }\n";
        assert!(check_default_hasher("x.rs", &lines(src)).is_empty());
    }

    #[test]
    fn crate_hygiene_requires_both_attributes() {
        let both = "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\npub fn f() {}\n";
        assert!(check_crate_hygiene("lib.rs", both).is_empty());

        let one = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        let v = check_crate_hygiene("lib.rs", one);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("rust_2018_idioms"));

        let none = "pub fn f() {}\n";
        assert_eq!(check_crate_hygiene("lib.rs", none).len(), 2);
    }

    #[test]
    fn crate_hygiene_ignores_attributes_in_comments() {
        let src = "// #![forbid(unsafe_code)]\n// #![deny(rust_2018_idioms)]\npub fn f() {}\n";
        let masked = crate::scan::mask_non_code(src);
        assert_eq!(check_crate_hygiene("lib.rs", &masked).len(), 2);
    }

    #[test]
    fn narrowing_cast_flags_narrow_targets_only() {
        let src = "fn f(x: usize) {\n  let a = x as u32;\n  let b = x as u64;\n  let c = x as SetId;\n  let d = x as usize;\n  let e = x as f64;\n  let g = x as ElementId;\n  let h = x as i16;\n}\n";
        let v = check_narrowing_cast("x.rs", &lines(src));
        assert_eq!(v.len(), 4, "{v:?}");
        let lines_hit: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines_hit, vec![2, 4, 7, 8]);
    }

    #[test]
    fn narrowing_cast_ignores_identifiers_containing_as() {
        let src = "fn f() { let alias = baseline_as_u32; let basis = has_u32(); }\n";
        assert!(check_narrowing_cast("x.rs", &lines(src)).is_empty());
    }

    #[test]
    fn std_sync_flags_imports_and_qualified_uses() {
        let src = "use std::sync::Mutex;\n\
                   use std::sync::{Arc, RwLock};\n\
                   fn f() { let m = std::sync::Mutex::new(0); }\n\
                   fn g(g: std::sync::MutexGuard<'_, u32>) {}\n";
        let v = check_std_sync("x.rs", &lines(src));
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == STD_SYNC));
        assert_eq!(
            v.iter().map(|v| v.line).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn float_round_cast_flags_int_targets_only() {
        let src = "fn f(x: f64, g: f64, n: usize) {\n\
                   \x20 let a = (g * n as f64).ceil() as usize;\n\
                   \x20 let b = (n as f64 / g).floor() as u64;\n\
                   \x20 let c = x.round() as i32;\n\
                   \x20 let d = x.ceil() as f32;\n\
                   \x20 let e = x.ceil();\n\
                   \x20 let f = ceil_tol(g * n as f64);\n\
                   }\n";
        let v = check_float_round_cast("x.rs", &lines(src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(v.iter().all(|v| v.rule == FLOAT_ROUND_CAST));
        assert!(v[0].message.contains("ceil_tol"), "{}", v[0].message);
    }

    #[test]
    fn float_round_cast_skips_tests_comments_and_strings() {
        let src = "fn f() { /* x.ceil() as usize */ let s = \".floor() as u64\"; }\n\
                   #[cfg(test)]\nmod tests {\n  fn t(x: f64) { let a = x.ceil() as usize; }\n}\n";
        assert!(check_float_round_cast("x.rs", &lines(src)).is_empty());
    }

    #[test]
    fn std_sync_permits_arc_atomics_channels_and_parking_lot() {
        let src = "use std::sync::Arc;\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   use std::sync::mpsc::sync_channel;\n\
                   use parking_lot::{Mutex, RwLock};\n\
                   fn f(m: parking_lot::Mutex<u32>) {}\n";
        assert!(check_std_sync("x.rs", &lines(src)).is_empty());
    }
}
