//! `cargo xtask benchdiff` — regression gate over the committed perf
//! baselines (`BENCH_join.json`, `BENCH_serve.json`).
//!
//! The bench harnesses append one JSON line per run. `ci.sh` re-runs the
//! quick configurations into temporary files and this pass diffs them
//! against the committed baselines:
//!
//! * **Counters are deterministic** (seeded datasets, exact candidate
//!   generation), so `signatures`, `candidates`, `f2`, `output_pairs`
//!   and the serve preload/op counts must match the baseline *exactly* —
//!   a drifted counter means the algorithm changed, not the machine.
//! * **Timings vary** with the machine and load, so wall-clock numbers
//!   (`total_secs`, `throughput`, `p99_us`) are only held to a generous
//!   tolerance factor (default 4×), enough to catch order-of-magnitude
//!   regressions without flaking on noise. Sub-threshold baselines are
//!   skipped entirely.
//! * The serve bench's `total_matches` depends on client interleaving
//!   (queries race concurrent inserts) and is not compared.
//!
//! Baseline files may hold multiple appended records; the *last* record
//! per configuration key wins, so re-running a bench locally and
//! committing the grown file updates the baseline.

use ssj_io::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Committed baseline file names (at the workspace root).
pub const JOIN_BASELINE: &str = "BENCH_join.json";
/// Committed serve baseline file name.
pub const SERVE_BASELINE: &str = "BENCH_serve.json";

/// Timing checks are skipped when the baseline is below this (seconds or
/// microseconds, per metric) — too small to compare meaningfully.
const MIN_SECS: f64 = 0.01;
const MIN_US: f64 = 50.0;

/// What to diff.
#[derive(Debug)]
pub struct BenchdiffConfig {
    /// Current join_bench output (JSON lines) to compare.
    pub current_join: Option<PathBuf>,
    /// Current serve_bench output (JSON lines) to compare.
    pub current_serve: Option<PathBuf>,
    /// Timing tolerance factor (current must stay within `baseline *
    /// factor`, throughput within `baseline / factor`).
    pub factor: f64,
}

impl Default for BenchdiffConfig {
    fn default() -> Self {
        BenchdiffConfig {
            current_join: None,
            current_serve: None,
            factor: 4.0,
        }
    }
}

/// Engine failure: unreadable or unparsable input.
#[derive(Debug)]
pub enum BenchdiffError {
    /// File could not be read.
    Io(PathBuf, std::io::Error),
    /// A record line did not parse as the expected JSON shape.
    Parse(PathBuf, usize, String),
}

impl fmt::Display for BenchdiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchdiffError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            BenchdiffError::Parse(path, line, msg) => {
                write!(f, "{}:{line}: {msg}", path.display())
            }
        }
    }
}

/// Outcome of one benchdiff run.
#[derive(Debug, Default)]
pub struct BenchdiffReport {
    /// Individual comparisons performed (for the summary line).
    pub checks: usize,
    /// Human-readable regression descriptions; empty means within band.
    pub regressions: Vec<String>,
    /// Non-fatal notes (skipped cells, tiny baselines).
    pub notes: Vec<String>,
}

impl fmt::Display for BenchdiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for note in &self.notes {
            writeln!(f, "benchdiff: note: {note}")?;
        }
        for r in &self.regressions {
            writeln!(f, "benchdiff: REGRESSION: {r}")?;
        }
        writeln!(
            f,
            "benchdiff: {} check(s), {} regression(s)",
            self.checks,
            self.regressions.len()
        )
    }
}

/// Runs the diff of the configured current files against the committed
/// baselines at `root`.
pub fn run_benchdiff(
    root: &Path,
    config: &BenchdiffConfig,
) -> Result<BenchdiffReport, BenchdiffError> {
    let mut report = BenchdiffReport::default();
    if let Some(current) = &config.current_join {
        diff_join(
            &root.join(JOIN_BASELINE),
            current,
            config.factor,
            &mut report,
        )?;
    }
    if let Some(current) = &config.current_serve {
        diff_serve(
            &root.join(SERVE_BASELINE),
            current,
            config.factor,
            &mut report,
        )?;
    }
    Ok(report)
}

/// One parsed JSON-line record.
type Record = BTreeMap<String, Value>;

/// Reads a JSON-lines file into the last record per key.
fn records_by_key(
    path: &Path,
    key_of: impl Fn(&Record) -> Result<String, String>,
) -> Result<BTreeMap<String, Record>, BenchdiffError> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| BenchdiffError::Io(path.to_path_buf(), e))?;
    let mut out = BTreeMap::new();
    for (idx, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value =
            json::parse(line).map_err(|e| BenchdiffError::Parse(path.to_path_buf(), idx + 1, e))?;
        let record = value
            .as_object()
            .map_err(|e| BenchdiffError::Parse(path.to_path_buf(), idx + 1, e))?
            .clone();
        let key =
            key_of(&record).map_err(|e| BenchdiffError::Parse(path.to_path_buf(), idx + 1, e))?;
        out.insert(key, record);
    }
    Ok(out)
}

fn field<'a>(record: &'a Record, name: &str) -> Result<&'a Value, String> {
    record.get(name).ok_or_else(|| format!("missing `{name}`"))
}

fn num(record: &Record, name: &str) -> Result<f64, String> {
    field(record, name)?.as_f64()
}

fn count(record: &Record, name: &str) -> Result<u64, String> {
    field(record, name)?.as_u64()
}

/// Join records are keyed by everything that determines the counters.
fn join_key(record: &Record) -> Result<String, String> {
    Ok(format!(
        "{} algo={} gamma={} n={} threads={} seed={}",
        field(record, "dataset")?.as_str()?,
        field(record, "algo")?.as_str()?,
        num(record, "gamma")?,
        count(record, "input_size")?,
        count(record, "threads")?,
        count(record, "seed")?,
    ))
}

/// Serve records are keyed by the full benchmark configuration.
fn serve_key(record: &Record) -> Result<String, String> {
    let cfg = field(record, "config")?.as_object()?;
    let get = |name: &str| -> Result<f64, String> {
        cfg.get(name)
            .ok_or_else(|| format!("missing config.{name}"))?
            .as_f64()
    };
    // Records from before cluster mode existed carry no `cluster_nodes`;
    // they are single-node runs (0).
    let cluster_nodes = match cfg.get("cluster_nodes") {
        Some(v) => v.as_f64()?,
        None => 0.0,
    };
    Ok(format!(
        "sets={} clients={} ops={} shards={} gamma={} qf={} seed={} nodes={}",
        get("sets")?,
        get("clients")?,
        get("ops_per_client")?,
        get("shards")?,
        get("gamma")?,
        get("query_fraction")?,
        get("seed")?,
        cluster_nodes,
    ))
}

fn diff_join(
    baseline_path: &Path,
    current_path: &Path,
    factor: f64,
    report: &mut BenchdiffReport,
) -> Result<(), BenchdiffError> {
    let baseline = records_by_key(baseline_path, join_key)?;
    let current = records_by_key(current_path, join_key)?;
    if baseline.is_empty() {
        report
            .regressions
            .push(format!("{}: no baseline records", baseline_path.display()));
        return Ok(());
    }
    for (key, base) in &baseline {
        report.checks += 1;
        let Some(cur) = current.get(key) else {
            report
                .regressions
                .push(format!("join [{key}]: cell missing from current run"));
            continue;
        };
        for name in ["signatures", "candidates", "f2", "output_pairs"] {
            match (count(base, name), count(cur, name)) {
                (Ok(b), Ok(c)) if b == c => {}
                (Ok(b), Ok(c)) => report.regressions.push(format!(
                    "join [{key}]: counter `{name}` drifted: baseline {b}, current {c} \
                     (counters are seeded-deterministic — the algorithm changed)"
                )),
                (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("join [{key}]: {e}")),
            }
        }
        // Optional counters, compared exactly when the baseline carries
        // them; older records without them still pass. The spill set is
        // EXT-only (deterministic given sets/seed/budget); the bitmap
        // pair is emitted by every cell (deterministic given the
        // deduplicated candidate set and per-set bitmaps).
        // `peak_rss_kb` is machine-dependent and never compared.
        for name in [
            "mem_budget",
            "partitions",
            "peak_bytes",
            "spilled_records",
            "spill_bytes",
            "bitmap_pruned",
            "bitmap_survivors",
        ] {
            if base.get(name).is_none() {
                continue;
            }
            match (count(base, name), count(cur, name)) {
                (Ok(b), Ok(c)) if b == c => {}
                (Ok(b), Ok(c)) => report.regressions.push(format!(
                    "join [{key}]: counter `{name}` drifted: baseline {b}, current {c} \
                     (optional counters are seeded-deterministic)"
                )),
                (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("join [{key}]: {e}")),
            }
        }
        timing_band(
            &format!("join [{key}] total_secs"),
            num(base, "total_secs"),
            num(cur, "total_secs"),
            factor,
            MIN_SECS,
            report,
        );
    }
    Ok(())
}

fn diff_serve(
    baseline_path: &Path,
    current_path: &Path,
    factor: f64,
    report: &mut BenchdiffReport,
) -> Result<(), BenchdiffError> {
    let baseline = records_by_key(baseline_path, serve_key)?;
    let current = records_by_key(current_path, serve_key)?;
    if baseline.is_empty() {
        report
            .regressions
            .push(format!("{}: no baseline records", baseline_path.display()));
        return Ok(());
    }
    for (key, base) in &baseline {
        report.checks += 1;
        let Some(cur) = current.get(key) else {
            report
                .regressions
                .push(format!("serve [{key}]: cell missing from current run"));
            continue;
        };
        // Deterministic counts: every preloaded set and measured op must
        // still happen.
        for counter in ["preload_sets", "measured_ops"] {
            match (count(base, counter), count(cur, counter)) {
                (Ok(b), Ok(c)) if b == c => {}
                (Ok(b), Ok(c)) => report.regressions.push(format!(
                    "serve [{key}]: `{counter}` drifted: baseline {b}, current {c}"
                )),
                (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("serve [{key}]: {e}")),
            }
        }
        // Bitmap-filter engagement. The absolute count races client
        // interleaving (like `total_matches`, which is never compared),
        // but whether the filter pruned *anything* is stable for a
        // workload this collision-heavy: a baseline that pruned must
        // keep pruning, else the filter silently fell out of the query
        // path. Only checked when the baseline carries the field.
        if base.get("bitmap_pruned").is_some() {
            match (count(base, "bitmap_pruned"), count(cur, "bitmap_pruned")) {
                (Ok(b), Ok(c)) if b > 0 && c == 0 => report.regressions.push(format!(
                    "serve [{key}]: bitmap filter disengaged: baseline pruned {b} \
                     candidate(s), current pruned none"
                )),
                (Ok(_), Ok(_)) => {}
                (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("serve [{key}]: {e}")),
            }
        }
        // Throughput: lower is worse; compare against baseline / factor.
        match (num(base, "throughput"), num(cur, "throughput")) {
            (Ok(b), Ok(c)) => {
                if c < b / factor {
                    report.regressions.push(format!(
                        "serve [{key}]: throughput fell {b:.0} -> {c:.0} ops/s \
                         (tolerance {factor}x)"
                    ));
                }
            }
            (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("serve [{key}]: {e}")),
        }
        // Tail latency: higher is worse.
        let p99 = |r: &Record| -> Result<f64, String> {
            field(r, "query_latency")?
                .as_object()?
                .get("p99_us")
                .ok_or_else(|| "missing query_latency.p99_us".to_string())?
                .as_f64()
        };
        timing_band(
            &format!("serve [{key}] query p99_us"),
            p99(base),
            p99(cur),
            factor,
            MIN_US,
            report,
        );
    }
    Ok(())
}

/// Current timing must stay within `baseline * factor`; tiny baselines
/// are noted and skipped.
fn timing_band(
    what: &str,
    base: Result<f64, String>,
    cur: Result<f64, String>,
    factor: f64,
    min_meaningful: f64,
    report: &mut BenchdiffReport,
) {
    match (base, cur) {
        (Ok(b), Ok(c)) => {
            if b < min_meaningful {
                let mut note = String::new();
                let _ = write!(
                    note,
                    "{what}: baseline {b} too small to band-check; skipped"
                );
                report.notes.push(note);
            } else if c > b * factor {
                report.regressions.push(format!(
                    "{what}: {b} -> {c} exceeds the {factor}x tolerance band"
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => report.regressions.push(format!("{what}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_lines(dir: &Path, name: &str, lines: &[&str]) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, lines.join("\n")).expect("fixture write");
        path
    }

    fn join_record(candidates: u64, total_secs: f64) -> String {
        format!(
            "{{\"schema\":1,\"bench\":\"join\",\"dataset\":\"address\",\"algo\":\"PEN\",\
             \"gamma\":0.8,\"input_size\":2000,\"threads\":1,\"seed\":42,\
             \"signatures\":100,\"candidates\":{candidates},\"f2\":7,\"output_pairs\":7,\
             \"sig_gen_secs\":0.1,\"cand_gen_secs\":0.1,\"verify_secs\":0.1,\
             \"total_secs\":{total_secs},\"unix_secs\":0}}"
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("benchdiff-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    #[test]
    fn exact_counters_and_banded_timings() {
        let dir = tmpdir("join");
        write_lines(&dir, JOIN_BASELINE, &[&join_record(500, 1.0)]);
        let current = write_lines(&dir, "current.json", &[&join_record(500, 2.0)]);
        let config = BenchdiffConfig {
            current_join: Some(current),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");
        assert_eq!(report.checks, 1);

        // Counter drift is a regression even with identical timing.
        let drifted = write_lines(&dir, "drift.json", &[&join_record(501, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(drifted),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert!(report.regressions[0].contains("candidates"), "{report}");

        // A 5x slowdown breaks the default 4x band.
        let slow = write_lines(&dir, "slow.json", &[&join_record(500, 5.0)]);
        let config = BenchdiffConfig {
            current_join: Some(slow),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert!(report.regressions[0].contains("tolerance band"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn ext_record(partitions: u64, peak_rss_kb: u64, total_secs: f64) -> String {
        format!(
            "{{\"schema\":1,\"bench\":\"join\",\"dataset\":\"address\",\"algo\":\"EXT\",\
             \"gamma\":0.8,\"input_size\":2000,\"threads\":1,\"seed\":42,\
             \"signatures\":100,\"candidates\":500,\"f2\":7,\"output_pairs\":7,\
             \"sig_gen_secs\":0.1,\"cand_gen_secs\":0.1,\"verify_secs\":0.1,\
             \"total_secs\":{total_secs},\"mem_budget\":262144,\"partitions\":{partitions},\
             \"peak_bytes\":200000,\"spilled_records\":100,\"spill_bytes\":1700,\
             \"peak_rss_kb\":{peak_rss_kb},\"unix_secs\":0}}"
        )
    }

    #[test]
    fn spill_counters_diffed_only_when_baseline_has_them() {
        let dir = tmpdir("spill");
        write_lines(&dir, JOIN_BASELINE, &[&ext_record(4, 50_000, 1.0)]);

        // Identical spill counters pass; peak_rss_kb may drift freely.
        let same = write_lines(&dir, "same.json", &[&ext_record(4, 90_000, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(same),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");

        // A drifted partition count is a regression.
        let drifted = write_lines(&dir, "drift.json", &[&ext_record(5, 50_000, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(drifted),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert!(report.regressions[0].contains("partitions"), "{report}");

        // A baseline record without spill counters never requires them.
        write_lines(&dir, JOIN_BASELINE, &[&join_record(500, 1.0)]);
        let plain = write_lines(&dir, "plain.json", &[&join_record(500, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(plain),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn bitmap_record(pruned: u64, survivors: u64) -> String {
        format!(
            "{{\"schema\":1,\"bench\":\"join\",\"dataset\":\"address\",\"algo\":\"PEN\",\
             \"gamma\":0.8,\"input_size\":2000,\"threads\":1,\"seed\":42,\
             \"signatures\":100,\"candidates\":500,\"f2\":7,\"output_pairs\":7,\
             \"bitmap_pruned\":{pruned},\"bitmap_survivors\":{survivors},\
             \"sig_gen_secs\":0.1,\"cand_gen_secs\":0.1,\"verify_secs\":0.1,\
             \"total_secs\":1.0,\"unix_secs\":0}}"
        )
    }

    #[test]
    fn bitmap_counters_exact_diffed_when_baseline_has_them() {
        let dir = tmpdir("bitmap");
        write_lines(&dir, JOIN_BASELINE, &[&bitmap_record(300, 200)]);

        // Identical bitmap counters pass.
        let same = write_lines(&dir, "same.json", &[&bitmap_record(300, 200)]);
        let config = BenchdiffConfig {
            current_join: Some(same),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");

        // A drifted prune count is a regression: the filter's behavior
        // changed even though the verified output did not.
        let drifted = write_lines(&dir, "drift.json", &[&bitmap_record(299, 201)]);
        let config = BenchdiffConfig {
            current_join: Some(drifted),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 2, "{report}");
        assert!(report.regressions[0].contains("bitmap_pruned"), "{report}");
        assert!(
            report.regressions[1].contains("bitmap_survivors"),
            "{report}"
        );

        // A baseline without the counters never requires them (older
        // records predate the bitmap filter).
        write_lines(&dir, JOIN_BASELINE, &[&join_record(500, 1.0)]);
        let plain = write_lines(&dir, "plain.json", &[&join_record(500, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(plain),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn serve_record(bitmap_pruned: Option<u64>) -> String {
        let bitmap = match bitmap_pruned {
            Some(n) => format!(",\"bitmap_pruned\":{n}"),
            None => String::new(),
        };
        format!(
            "{{\"schema\":1,\"unix_secs\":0,\"config\":{{\"sets\":2000,\"set_size\":12,\
             \"domain\":500,\"clients\":4,\"ops_per_client\":500,\"query_fraction\":0.5,\
             \"gamma\":0.8,\"shards\":4,\"workers\":4,\"queue_capacity\":1024,\"seed\":42}},\
             \"preload_sets\":2000,\"preload_secs\":0.5,\"preload_throughput\":4000.0,\
             \"measured_ops\":2000,\"wall_secs\":1.0,\"throughput\":2000.0,\
             \"latency\":{{\"count\":2000,\"mean_us\":50.0,\"p50_us\":40,\"p95_us\":90,\
             \"p99_us\":120,\"max_us\":400}},\
             \"query_latency\":{{\"count\":1000,\"mean_us\":50.0,\"p50_us\":40,\"p95_us\":90,\
             \"p99_us\":120,\"max_us\":400}},\
             \"write_latency\":{{\"count\":1000,\"mean_us\":50.0,\"p50_us\":40,\"p95_us\":90,\
             \"p99_us\":120,\"max_us\":400}},\
             \"total_matches\":5000,\"candidates_probed\":90000{bitmap}\
             ,\"overloaded\":0,\"timeouts\":0,\"live_sets\":[500,500,500,500]}}"
        )
    }

    #[test]
    fn serve_bitmap_engagement_checked_when_baseline_pruned() {
        let dir = tmpdir("serve-bitmap");
        write_lines(&dir, SERVE_BASELINE, &[&serve_record(Some(40_000))]);

        // Any non-zero prune count passes — the absolute value races
        // client interleaving, only engagement is stable.
        let engaged = write_lines(&dir, "engaged.json", &[&serve_record(Some(1))]);
        let config = BenchdiffConfig {
            current_serve: Some(engaged),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");

        // Zero prunes against a pruning baseline means the filter fell
        // out of the query path.
        let disengaged = write_lines(&dir, "disengaged.json", &[&serve_record(Some(0))]);
        let config = BenchdiffConfig {
            current_serve: Some(disengaged),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert!(report.regressions[0].contains("disengaged"), "{report}");

        // A baseline without the field never requires it.
        write_lines(&dir, SERVE_BASELINE, &[&serve_record(None)]);
        let plain = write_lines(&dir, "plain.json", &[&serve_record(None)]);
        let config = BenchdiffConfig {
            current_serve: Some(plain),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_record_per_key_wins_and_missing_cells_regress() {
        let dir = tmpdir("last");
        write_lines(
            &dir,
            JOIN_BASELINE,
            &[&join_record(111, 1.0), &join_record(500, 1.0)],
        );
        let ok = write_lines(&dir, "ok.json", &[&join_record(500, 1.0)]);
        let config = BenchdiffConfig {
            current_join: Some(ok),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert!(report.regressions.is_empty(), "{report}");

        let empty = write_lines(&dir, "empty.json", &[""]);
        let config = BenchdiffConfig {
            current_join: Some(empty),
            ..BenchdiffConfig::default()
        };
        let report = run_benchdiff(&dir, &config).expect("runs");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert!(report.regressions[0].contains("missing"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
