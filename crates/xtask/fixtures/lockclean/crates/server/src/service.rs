//! Fixture: canonical lock discipline — locklint must report zero
//! findings (the deliberate sites are annotated with justifications).

pub struct Service {
    shards: Vec<Shard>,
    wal: Mutex<Wal>,
}

impl Service {
    fn lock_all_read(&self) -> Vec<Guard<'_>> {
        // locklint: allow(multi-shard-order, fn): ascending shard order by construction (vector index order); the runtime witness re-checks monotonicity.
        self.shards.iter().map(|s| s.index.read()).collect()
    }

    pub fn query(&self) -> usize {
        let guards = self.lock_all_read();
        let n = guards.len();
        drop(guards);
        n
    }

    pub fn write_path(&self) {
        // locklint: allow(blocking-under-lock, fn): the WAL append stays inside the shard write critical section so file order equals seq order.
        let g = self.shards[0].index.write();
        let w = self.wal.lock();
        w.file.write_all(b"rec");
        drop(w);
        drop(g);
    }
}
