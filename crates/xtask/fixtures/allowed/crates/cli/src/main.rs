// A no-panic violation that the tree's lint_allow.toml suppresses.
fn main() {
    let arg = std::env::args().nth(1).expect("usage: tool <arg>");
    println!("{arg}");
}
