//! Fixture: annotation hygiene (locklint-annotation findings).

pub struct Store {
    wal: Mutex<Wal>,
}

impl Store {
    // An annotation with no written justification must be rejected AND
    // must not suppress the finding it points at.
    pub fn empty_reason(&self) {
        let w = self.wal.lock();
        // locklint: allow(blocking-under-lock):
        w.file.sync_data();
        drop(w);
    }

    // An annotation naming a rule locklint does not have.
    pub fn unknown_rule(&self) {
        // locklint: allow(no-such-rule): a reason alone is not enough
        let w = self.wal.lock();
        drop(w);
    }
}
