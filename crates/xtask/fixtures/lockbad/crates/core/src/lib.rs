//! Fixture: annotations are forbidden in ssj-core (locklint-scope).

pub fn in_core() {
    // locklint: allow(blocking-under-lock, fn): core carries no suppressions, ever
}
