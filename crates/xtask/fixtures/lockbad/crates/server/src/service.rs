//! Fixture: every locklint analysis rule must fire on this tree.

pub struct Service {
    shards: Vec<Shard>,
    wal: Mutex<Wal>,
    file: File,
}

impl Service {
    // multi-shard-order: iterated acquisition outside the canonical helpers.
    pub fn iterate(&self) {
        for shard in &self.shards {
            let g = shard.index.read();
            g.touch();
        }
    }

    // blocking-under-lock: fsync while a shard write lock is held.
    pub fn sync_under_lock(&self) {
        let g = self.shards[0].index.write();
        self.file.sync_data();
        drop(g);
    }

    // lock-order: shard lock acquired while the WAL mutex is held
    // (descending rank), and the wal -> shard edge for the cycle.
    pub fn inverted(&self) {
        let w = self.wal.lock();
        let g = self.shards[0].index.read();
        drop(g);
        drop(w);
    }

    // Ascending shard -> wal edge: clean locally, but together with
    // `inverted` it closes the class-order cycle (lock-order-cycle).
    pub fn forward(&self) {
        let g = self.shards[0].index.write();
        let w = self.wal.lock();
        drop(w);
        drop(g);
    }

    // guard-lifetime: guards stored into a collection and an Option.
    pub fn stored(&self) {
        let mut guards = Vec::new();
        guards.push(self.shards[0].index.read());
        let held = Some(self.shards[1].index.write());
        drop(held);
        drop(guards);
    }

    // blocking-under-lock through the call graph: `persist` blocks, and
    // this caller reaches it with a shard lock held.
    pub fn indirect(&self) {
        let g = self.shards[0].index.read();
        self.persist();
        drop(g);
    }

    fn persist(&self) {
        self.file.write_all(b"x");
    }
}
