#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

// The allowlist in this tree tries to exempt ssj-store; the engine must
// reject the exemption (allowlist-scope) even though the entry would
// otherwise suppress this violation.

pub fn last(v: Option<u32>) -> u32 {
    v.unwrap()
}
