#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

// Clean fixture: nothing here should trip any rule. Tests live in a
// #[cfg(test)] module and may panic freely.

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn safe_first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let x = 70_000usize;
        let _ = x as u32;
    }
}
