//! durbad fixture: acks durable_seq with no path to the WAL sync point.

fn insert_d(elems: Vec<u32>) -> u64 {
    apply(elems)
}

fn apply(elems: Vec<u32>) -> u64 {
    elems.len() as u64
}
