//! durbad fixture: every crash-consistency protocol rule broken.

fn write_meta(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn load_meta(path: &Path) -> io::Result<Vec<u8>> {
    fs::read(path)
}

fn annotated_wrong(path: &Path) -> io::Result<()> {
    // durlint: allow(no-such-rule): nonsense rule name must be rejected.
    // durlint: allow(raw-durable-write):
    fs::write(path, b"x")
}
