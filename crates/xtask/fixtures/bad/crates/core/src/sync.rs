//! Fixture: std::sync locks (L5 `std-sync-lock` must flag every use).

use std::sync::Mutex;
use std::sync::{Arc, RwLock};

pub struct Bad {
    pub m: std::sync::Mutex<u32>,
    pub r: Arc<RwLock<u32>>,
}

pub fn guard(g: std::sync::MutexGuard<'_, u32>) -> u32 {
    *g
}

pub fn fine() {
    // Atomics and channels stay legal; only locks are banned.
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc::sync_channel;
    let _ = AtomicU64::new(0);
    let _ = sync_channel::<u32>(1);
}
