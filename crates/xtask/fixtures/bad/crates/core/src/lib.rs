// Seeded-violation fixture: every rule class must fire on this tree.
// (Deliberately missing #![forbid(unsafe_code)] and
// #![deny(rust_2018_idioms)] — that is the crate-hygiene violation.)

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn narrow(x: usize) -> u32 {
    x as u32
}

pub fn unfinished() {
    todo!("never")
}
