// Seeded default-hasher violation in a hot-path module.
use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn lookup(m: &std::collections::HashSet<u32>, k: u32) -> bool {
    m.contains(&k)
}
