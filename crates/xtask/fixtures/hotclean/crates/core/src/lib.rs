//! Fixture: canonical hot-path discipline — hotlint must report zero
//! findings (the deliberate sites are annotated with justifications).

fn verify_pairs_into(pairs: &[u64], out: &mut Vec<u64>) {
    out.clear();
    for &p in pairs {
        if keep(p) {
            out.push(p);
        }
    }
}

fn keep(p: u64) -> bool {
    p % 2 == 0
}

fn query(corpus: &Corpus, scratch: &mut Scratch) -> usize {
    // hotlint: allow(hot-scratch, fn): one bounded Vec per call — sized by the shard count, not the candidate count.
    let mut shard_totals = Vec::new();
    scratch.ids.clear();
    collect_ids(corpus, &mut scratch.ids);
    shard_totals.push(scratch.ids.len());
    shard_totals.len()
}

fn collect_ids(corpus: &Corpus, out: &mut Vec<u64>) {
    out.extend_from_slice(&corpus.ids);
}

fn encode_set(set: &[u32], out: &mut Vec<u8>) {
    // hotlint: allow(hot-blocking, fn): in-memory Vec<u8> sink — file writes happen outside the hot path.
    out.write_all(&[set.len() as u8]).unwrap();
}
