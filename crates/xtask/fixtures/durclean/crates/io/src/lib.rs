//! durclean fixture: the full staged-publish protocol, including an
//! interprocedural file fsync and a crate-local tmp sweep.

fn publish(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = stage_name(path);
    let f = File::create(&tmp)?;
    settle_file(&f, bytes)?;
    fs::rename(&tmp, path)?;
    sync_dir(parent(path))
}

fn settle_file(f: &File, bytes: &[u8]) -> io::Result<()> {
    f.write_all(bytes)?;
    f.sync_all()
}

fn stage_name(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn sweep_tmp_files(dir: &Path) -> io::Result<usize> {
    let _ = dir;
    Ok(0)
}

fn parent(path: &Path) -> &Path {
    path
}
