//! durclean fixture: durable-state crate — verified recovery reads plus
//! audited, justified suppressions for the deliberate exceptions.

fn load_snapshot(path: &Path) -> io::Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    let _ = check(&bytes);
    Ok(bytes)
}

fn check(bytes: &[u8]) -> u32 {
    crc32(bytes)
}

fn crc32(bytes: &[u8]) -> u32 {
    bytes.len() as u32
}

fn write_pid(path: &Path) -> io::Result<()> {
    // durlint: allow(raw-durable-write): advisory pid marker, rewritten on every boot; a torn one is ignored.
    fs::write(path, b"pid")
}

fn read_hint(path: &Path) -> io::Result<Vec<u8>> {
    // durlint: allow(unchecked-durable-read): advisory warm-cache hint, structurally validated by the caller; garbage just misses.
    fs::read(path)
}
