//! durclean fixture: every durable ack reaches the WAL sync point.

fn insert_d(elems: Vec<u32>) -> u64 {
    settle(elems.len() as u64)
}

fn remove_d(seq: u64) -> u64 {
    settle(seq)
}

fn settle(seq: u64) -> u64 {
    ensure_durable(seq);
    seq
}

fn ensure_durable(seq: u64) {
    let _ = seq;
}
