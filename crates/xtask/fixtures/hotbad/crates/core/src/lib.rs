//! Fixture: every hotlint rule fires at a pinned line, and malformed
//! annotations are themselves findings (and suppress nothing).

fn verify_pairs_into(pairs: &[u64]) -> usize {
    let mut out = Vec::new();
    for &p in pairs {
        let tmp = vec![p];
        out.push(tmp.len());
    }
    out.push(helper(pairs).to_vec().len());
    let owned = pairs.to_owned();
    out.len() + owned.len()
}

fn helper(pairs: &[u64]) -> &[u64] {
    pairs
}

fn query(corpus: &Corpus) -> usize {
    let lookup = HashMap::new();
    flush(corpus);
    lookup.len()
}

fn flush(corpus: &Corpus) {
    let _ = corpus.file.sync_all();
}

fn signatures_into(set: &[u32], out: &mut Vec<u64>) {
    // hotlint: allow(hot-fast): no such rule — must be an annotation finding.
    // hotlint: allow(hot-scratch):
    let extra = set.to_vec();
    // hotlint: allow(hot-scratch): names the wrong rule for the line below, so it must not suppress it.
    out.push(extra.len() as u64 + set.to_vec().len() as u64);
}
