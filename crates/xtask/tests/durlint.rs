//! End-to-end tests for `cargo xtask durlint`: engine-level assertions on
//! the fixture trees, exit-code checks on the compiled binary, and the
//! workspace self-test (the acceptance gate: the real repo's persistence
//! paths pass their own crash-consistency analysis with every suppression
//! justified in writing).

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::durlint::{self, DurlintReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn run(root: &Path) -> DurlintReport {
    durlint::run_durlint(root).expect("engine runs")
}

fn durlint_exit(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["durlint", "--root"]).arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn durbad_fixture_trips_every_rule() {
    let report = run(&fixture("durbad"));
    let rules_hit: Vec<&str> = report.findings.iter().map(|v| v.rule).collect();
    for rule in [
        durlint::RENAME_NO_FSYNC,
        durlint::RENAME_NO_DIRSYNC,
        durlint::ACK_BEFORE_SYNC,
        durlint::RAW_DURABLE_WRITE,
        durlint::UNCHECKED_DURABLE_READ,
        durlint::TMP_NO_SWEEP,
        durlint::ANNOTATION_RULE,
    ] {
        assert!(
            rules_hit.contains(&rule),
            "rule {rule} did not fire:\n{:#?}",
            report.findings
        );
    }
    // Nothing was suppressed: the unknown-rule and empty-reason
    // annotations must not count.
    assert!(report.suppressed.is_empty(), "{:#?}", report.suppressed);
}

#[test]
fn durbad_fixture_pinpoints_the_right_sites() {
    let report = run(&fixture("durbad"));
    let at = |path_suffix: &str, rule: &str| -> Vec<usize> {
        report
            .findings
            .iter()
            .filter(|v| v.path.ends_with(path_suffix) && v.rule == rule)
            .map(|v| v.line)
            .collect()
    };

    // The `*.tmp` stage in a crate with no sweep path.
    assert_eq!(at("store/src/lib.rs", durlint::TMP_NO_SWEEP), vec![4]);
    // The in-place create, and the one the malformed annotations fail to
    // suppress.
    assert_eq!(
        at("store/src/lib.rs", durlint::RAW_DURABLE_WRITE),
        vec![5, 18]
    );
    // The rename of a never-fsynced file…
    assert_eq!(at("store/src/lib.rs", durlint::RENAME_NO_FSYNC), vec![7]);
    // …which is also never followed by a directory fsync.
    assert_eq!(at("store/src/lib.rs", durlint::RENAME_NO_DIRSYNC), vec![7]);
    // The unverified recovery read.
    assert_eq!(
        at("store/src/lib.rs", durlint::UNCHECKED_DURABLE_READ),
        vec![12]
    );
    // The unknown-rule and empty-reason annotations.
    assert_eq!(
        at("store/src/lib.rs", durlint::ANNOTATION_RULE),
        vec![16, 17]
    );
    // The durable ack with no path to the WAL sync point.
    assert_eq!(
        at("server/src/service.rs", durlint::ACK_BEFORE_SYNC),
        vec![3]
    );
}

#[test]
fn durclean_fixture_is_clean_with_audited_suppressions() {
    let report = run(&fixture("durclean"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // The advisory pid file and warm-cache hint are suppressed — with
    // reasons — not silently invisible.
    assert!(
        report.suppressed.len() >= 2,
        "expected audited suppressions, got {:#?}",
        report.suppressed
    );
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    let rules: Vec<&str> = report.suppressed.iter().map(|s| s.rule).collect();
    assert!(rules.contains(&durlint::RAW_DURABLE_WRITE), "{rules:?}");
    assert!(
        rules.contains(&durlint::UNCHECKED_DURABLE_READ),
        "{rules:?}"
    );
}

#[test]
fn durbad_exits_one_and_durclean_exits_zero() {
    let (code, stdout) = durlint_exit(&fixture("durbad"), false);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    for rule in [
        "rename-no-fsync",
        "rename-no-dirsync",
        "ack-before-sync",
        "raw-durable-write",
        "unchecked-durable-read",
        "tmp-no-sweep",
        "durlint-annotation",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    let (code, stdout) = durlint_exit(&fixture("durclean"), false);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn json_report_is_well_formed() {
    let (code, stdout) = durlint_exit(&fixture("durclean"), true);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    // No JSON parser in-tree; assert the structural invariants the trend
    // tooling relies on.
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"suppressed\":["));
    assert!(line.contains("\"files\":"));
    assert!(line.contains("\"functions\":"));
    assert!(line.contains("\"rename_sites\":"));
    assert!(line.contains("\"reason\":"));

    let (code, stdout) = durlint_exit(&fixture("durbad"), true);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\":\"rename-no-fsync\""), "{stdout}");
}

#[test]
fn workspace_is_dur_clean() {
    // The acceptance gate: the real repo passes its own crash-consistency
    // analysis with zero unannotated findings.
    let report = run(&repo_root());
    assert!(
        report.findings.is_empty(),
        "workspace durlint findings:\n{:#?}",
        report.findings
    );
    assert!(report.functions > 100, "scan looks too small to be real");
    assert!(
        report.rename_sites >= 2,
        "the canonical atomic helper and the segment seal both rename: {}",
        report.rename_sites
    );
}

#[test]
fn workspace_suppressions_are_audited() {
    let report = run(&repo_root());
    // Every suppression carries a written justification…
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "{:#?}",
        report.suppressed
    );
    // …and the deliberate sites stay visible, not silently absent: the
    // segment seal stage and the spill partitions, both swept by the
    // store-side recovery rather than by ssj-extern itself.
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.path.starts_with("crates/extern/") && s.rule == durlint::TMP_NO_SWEEP),
        "expected the audited extern staging suppressions:\n{:#?}",
        report.suppressed
    );
    // The suppression budget is pinned: growing it means adding a new
    // justified annotation *and* consciously bumping this bound.
    assert!(
        report.suppressed.len() <= 12,
        "suppression count grew to {} — audit the new annotations:\n{:#?}",
        report.suppressed.len(),
        report.suppressed
    );
}
