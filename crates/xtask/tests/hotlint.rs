//! End-to-end tests for `cargo xtask hotlint`: engine-level assertions on
//! the fixture trees, exit-code checks on the compiled binary, and the
//! workspace self-test (the acceptance gate: the real repo's hot paths
//! pass their own allocation analysis with every suppression justified in
//! writing).

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::hotlint::{self, HotlintReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn run(root: &Path) -> HotlintReport {
    hotlint::run_hotlint(root).expect("engine runs")
}

fn hotlint_exit(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["hotlint", "--root"]).arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn hotbad_fixture_trips_every_rule() {
    let report = run(&fixture("hotbad"));
    let rules_hit: Vec<&str> = report.findings.iter().map(|v| v.rule).collect();
    for rule in [
        hotlint::HOT_ALLOC,
        hotlint::HOT_ALLOC_LOOP,
        hotlint::HOT_CLONE,
        hotlint::HOT_HASHER,
        hotlint::HOT_BLOCKING,
        hotlint::HOT_SCRATCH,
        hotlint::ANNOTATION_RULE,
    ] {
        assert!(
            rules_hit.contains(&rule),
            "rule {rule} did not fire:\n{:#?}",
            report.findings
        );
    }
    // Nothing was suppressed: the empty-reason and wrong-rule annotations
    // must not count.
    assert!(report.suppressed.is_empty(), "{:#?}", report.suppressed);
}

#[test]
fn hotbad_fixture_pinpoints_the_right_sites() {
    let report = run(&fixture("hotbad"));
    let at = |rule: &str| -> Vec<usize> {
        report
            .findings
            .iter()
            .filter(|v| v.path.ends_with("core/src/lib.rs") && v.rule == rule)
            .map(|v| v.line)
            .collect()
    };

    // The per-call temporary at body top level, and the one an
    // empty-reason annotation fails to suppress.
    assert_eq!(at(hotlint::HOT_SCRATCH), vec![5, 32]);
    // The per-element allocation inside the for loop.
    assert_eq!(at(hotlint::HOT_ALLOC_LOOP), vec![7]);
    // The mid-expression allocation, and the one a wrong-rule annotation
    // fails to suppress.
    assert_eq!(at(hotlint::HOT_ALLOC), vec![10, 34]);
    // The heap-owning copy.
    assert_eq!(at(hotlint::HOT_CLONE), vec![11]);
    // Default-hasher map construction in the query root.
    assert_eq!(at(hotlint::HOT_HASHER), vec![20]);
    // The call that reaches the fsync, and the fsync itself (flush is hot
    // because query calls it).
    assert_eq!(at(hotlint::HOT_BLOCKING), vec![21, 26]);
    // The unknown-rule and empty-reason annotations.
    assert_eq!(at(hotlint::ANNOTATION_RULE), vec![30, 31]);
}

#[test]
fn hotclean_fixture_is_clean_with_audited_suppressions() {
    let report = run(&fixture("hotclean"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // The bounded per-call Vec and the in-memory Write sink are
    // suppressed — with reasons — not silently invisible.
    assert!(
        report.suppressed.len() >= 2,
        "expected audited suppressions, got {:#?}",
        report.suppressed
    );
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    let rules: Vec<&str> = report.suppressed.iter().map(|s| s.rule).collect();
    assert!(rules.contains(&hotlint::HOT_SCRATCH), "{rules:?}");
    assert!(rules.contains(&hotlint::HOT_BLOCKING), "{rules:?}");
}

#[test]
fn hotbad_exits_one_and_hotclean_exits_zero() {
    let (code, stdout) = hotlint_exit(&fixture("hotbad"), false);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    for rule in [
        "hot-alloc",
        "hot-alloc-loop",
        "hot-clone",
        "hot-default-hasher",
        "hot-blocking",
        "hot-scratch",
        "hotlint-annotation",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    let (code, stdout) = hotlint_exit(&fixture("hotclean"), false);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn json_report_is_well_formed() {
    let (code, stdout) = hotlint_exit(&fixture("hotclean"), true);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    // No JSON parser in-tree; assert the structural invariants the trend
    // tooling relies on.
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"suppressed\":["));
    assert!(line.contains("\"files\":"));
    assert!(line.contains("\"functions\":"));
    assert!(line.contains("\"hot_functions\":"));
    assert!(line.contains("\"reason\":"));

    let (code, stdout) = hotlint_exit(&fixture("hotbad"), true);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\":\"hot-alloc\""), "{stdout}");
}

#[test]
fn workspace_is_hot_clean() {
    // The acceptance gate: the real repo passes its own hot-path
    // allocation analysis with zero unannotated findings.
    let report = run(&repo_root());
    assert!(
        report.findings.is_empty(),
        "workspace hotlint findings:\n{:#?}",
        report.findings
    );
    assert!(report.functions > 100, "scan looks too small to be real");
    assert!(
        report.hot_functions > 20,
        "hot propagation looks too small to be real: {}",
        report.hot_functions
    );
}

#[test]
fn workspace_suppressions_are_audited() {
    let report = run(&repo_root());
    // Every suppression carries a written justification…
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "{:#?}",
        report.suppressed
    );
    // …and the deliberate sites stay visible, not silently absent: the
    // convenience wrappers around the scratch-threaded entry points and
    // the in-memory `impl Write` varint sink.
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.path.starts_with("crates/core/") && s.rule == hotlint::HOT_SCRATCH),
        "expected the audited wrapper suppressions:\n{:#?}",
        report.suppressed
    );
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.path.starts_with("crates/io/") && s.rule == hotlint::HOT_BLOCKING),
        "expected the audited varint `impl Write` suppression:\n{:#?}",
        report.suppressed
    );
    // The suppression budget is pinned: growing it means adding a new
    // justified annotation *and* consciously bumping this bound.
    assert!(
        report.suppressed.len() <= 12,
        "suppression count grew to {} — audit the new annotations:\n{:#?}",
        report.suppressed.len(),
        report.suppressed
    );
}
