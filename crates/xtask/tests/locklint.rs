//! End-to-end tests for `cargo xtask locklint`: engine-level assertions
//! on the fixture trees, exit-code checks on the compiled binary, and the
//! workspace self-test (the acceptance gate: the real repo passes its own
//! lock-discipline analysis with every suppression justified in writing).

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::locklint::{self, LocklintReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn run(root: &Path) -> LocklintReport {
    locklint::run_locklint(root).expect("engine runs")
}

fn locklint_exit(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["locklint", "--root"]).arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn lockbad_fixture_trips_every_rule() {
    let report = run(&fixture("lockbad"));
    let rules_hit: Vec<&str> = report.findings.iter().map(|v| v.rule).collect();
    for rule in [
        locklint::LOCK_ORDER,
        locklint::LOCK_ORDER_CYCLE,
        locklint::MULTI_SHARD_ORDER,
        locklint::BLOCKING_UNDER_LOCK,
        locklint::GUARD_LIFETIME,
        locklint::ANNOTATION_RULE,
        locklint::SCOPE_RULE,
    ] {
        assert!(
            rules_hit.contains(&rule),
            "rule {rule} did not fire:\n{:#?}",
            report.findings
        );
    }
    // Nothing was suppressed: the empty-reason annotation must not count.
    assert!(report.suppressed.is_empty(), "{:#?}", report.suppressed);
}

#[test]
fn lockbad_fixture_pinpoints_the_right_sites() {
    let report = run(&fixture("lockbad"));
    let at = |path: &str, rule: &str| -> Vec<usize> {
        report
            .findings
            .iter()
            .filter(|v| v.path.ends_with(path) && v.rule == rule)
            .map(|v| v.line)
            .collect()
    };

    // Iterated shard acquisition inside the for loop.
    assert_eq!(
        at("server/src/service.rs", locklint::MULTI_SHARD_ORDER),
        vec![13, 47],
        "iterate() loop body and the nested acquire in stored()"
    );
    // fsync under a write lock, plus the call-graph-propagated write.
    assert_eq!(
        at("server/src/service.rs", locklint::BLOCKING_UNDER_LOCK),
        vec![21, 56]
    );
    // Shard lock taken while the WAL mutex is held.
    assert_eq!(at("server/src/service.rs", locklint::LOCK_ORDER), vec![29]);
    // Guard pushed into a Vec and wrapped in Some.
    assert_eq!(
        at("server/src/service.rs", locklint::GUARD_LIFETIME),
        vec![46, 47]
    );
    // The wal -> shard edge from inverted() plus shard -> wal from
    // forward() close a class cycle.
    let cycles = at("server/src/service.rs", locklint::LOCK_ORDER_CYCLE);
    assert_eq!(cycles.len(), 1, "{:#?}", report.findings);
    let cycle = report
        .findings
        .iter()
        .find(|v| v.rule == locklint::LOCK_ORDER_CYCLE)
        .expect("cycle finding present");
    assert!(
        cycle.message.contains("shard-index") && cycle.message.contains("store-wal"),
        "{cycle:?}"
    );

    // Annotation hygiene: empty reason (which also fails to suppress the
    // fsync it points at) and an unknown rule name.
    assert_eq!(
        at("store/src/lib.rs", locklint::ANNOTATION_RULE),
        vec![12, 19]
    );
    assert_eq!(
        at("store/src/lib.rs", locklint::BLOCKING_UNDER_LOCK),
        vec![13],
        "an unjustified annotation must not suppress anything"
    );
    // Core carries no annotations, ever.
    assert_eq!(at("core/src/lib.rs", locklint::SCOPE_RULE), vec![4]);
}

#[test]
fn lockclean_fixture_is_clean_with_audited_suppressions() {
    let report = run(&fixture("lockclean"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // The canonical helper and the WAL-append path are suppressed — with
    // reasons — not silently invisible.
    assert!(
        report.suppressed.len() >= 2,
        "expected audited suppressions, got {:#?}",
        report.suppressed
    );
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    let rules: Vec<&str> = report.suppressed.iter().map(|s| s.rule).collect();
    assert!(rules.contains(&locklint::MULTI_SHARD_ORDER));
    assert!(rules.contains(&locklint::BLOCKING_UNDER_LOCK));
}

#[test]
fn lockbad_exits_one_and_lockclean_exits_zero() {
    let (code, stdout) = locklint_exit(&fixture("lockbad"), false);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    for rule in [
        "lock-order",
        "lock-order-cycle",
        "multi-shard-order",
        "blocking-under-lock",
        "guard-lifetime",
        "locklint-annotation",
        "locklint-scope",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    let (code, stdout) = locklint_exit(&fixture("lockclean"), false);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"));
}

#[test]
fn json_report_is_well_formed() {
    let (code, stdout) = locklint_exit(&fixture("lockclean"), true);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    // No JSON parser in-tree; assert the structural invariants the trend
    // tooling relies on.
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"suppressed\":["));
    assert!(line.contains("\"files\":"));
    assert!(line.contains("\"functions\":"));
    assert!(line.contains("\"reason\":"));

    let (code, stdout) = locklint_exit(&fixture("lockbad"), true);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\":\"lock-order\""), "{stdout}");
}

#[test]
fn workspace_is_lock_clean() {
    // The acceptance gate: the real repo passes its own lock analysis.
    let report = run(&repo_root());
    assert!(
        report.findings.is_empty(),
        "workspace locklint findings:\n{:#?}",
        report.findings
    );
    assert!(report.functions > 100, "scan looks too small to be real");
}

#[test]
fn workspace_suppressions_are_audited_and_outside_core() {
    let report = run(&repo_root());
    // Every suppression carries a written justification…
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "{:#?}",
        report.suppressed
    );
    // …and none lives in ssj-core (zero-allowlist policy).
    assert!(
        report
            .suppressed
            .iter()
            .all(|s| !s.path.starts_with("crates/core/")),
        "{:#?}",
        report.suppressed
    );
    // The deliberate WAL-under-lock sites are visible, not silently absent.
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.path.starts_with("crates/store/") && s.rule == "blocking-under-lock"),
        "expected the audited WAL fsync-under-mutex suppressions:\n{:#?}",
        report.suppressed
    );
}
