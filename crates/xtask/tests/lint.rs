//! End-to-end tests for `cargo xtask lint`: engine-level assertions on the
//! fixture trees plus exit-code checks on the compiled binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn lint_exit(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn bad_fixture_trips_every_rule_class() {
    let violations = xtask::run_lint(&fixture("bad")).expect("engine runs");
    let rules_hit: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for rule in [
        xtask::rules::NO_PANIC,
        xtask::rules::DEFAULT_HASHER,
        xtask::rules::CRATE_HYGIENE,
        xtask::rules::NARROWING_CAST,
        xtask::rules::STD_SYNC,
    ] {
        assert!(
            rules_hit.contains(&rule),
            "rule {rule} did not fire: {violations:?}"
        );
    }
    // Spot-check locations: unwrap at lib.rs:6, cast at lib.rs:10,
    // todo! at lib.rs:14, three HashMap + one HashSet token in index.rs.
    let at = |path: &str, rule: &str| -> Vec<usize> {
        violations
            .iter()
            .filter(|v| v.path.ends_with(path) && v.rule == rule)
            .map(|v| v.line)
            .collect()
    };
    assert_eq!(at("core/src/lib.rs", xtask::rules::NO_PANIC), vec![6, 14]);
    assert_eq!(
        at("core/src/lib.rs", xtask::rules::NARROWING_CAST),
        vec![10]
    );
    assert_eq!(at("core/src/lib.rs", xtask::rules::CRATE_HYGIENE).len(), 2);
    assert_eq!(
        at("core/src/index.rs", xtask::rules::DEFAULT_HASHER).len(),
        4
    );
    // std::sync locks in sync.rs: Mutex import, RwLock in a brace list,
    // qualified Mutex field, MutexGuard in a signature. The atomics and
    // mpsc imports in the same file must not fire.
    assert_eq!(
        at("core/src/sync.rs", xtask::rules::STD_SYNC),
        vec![3, 4, 7, 11]
    );
}

#[test]
fn bad_fixture_exits_nonzero() {
    let (code, stdout) = lint_exit(&fixture("bad"));
    assert_eq!(code, 1, "stdout:\n{stdout}");
    for rule in [
        "no-panic",
        "default-hasher",
        "crate-hygiene",
        "narrowing-cast",
        "std-sync-lock",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn clean_fixture_exits_zero() {
    let (code, stdout) = lint_exit(&fixture("clean"));
    assert_eq!(code, 0, "stdout:\n{stdout}");
}

#[test]
fn allowlist_suppresses_cli_violation() {
    // Without the allowlist the cli fixture would flag `.expect(`; the
    // tree's lint_allow.toml entry must suppress it end to end.
    let (code, stdout) = lint_exit(&fixture("allowed"));
    assert_eq!(code, 0, "stdout:\n{stdout}");
}

#[test]
fn allowlist_cannot_exempt_core() {
    let violations = xtask::run_lint(&fixture("corescope")).expect("engine runs");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == xtask::rules::ALLOWLIST_SCOPE),
        "{violations:?}"
    );
    let (code, stdout) = lint_exit(&fixture("corescope"));
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("allowlist-scope"));
}

#[test]
fn allowlist_cannot_exempt_server() {
    let violations = xtask::run_lint(&fixture("servescope")).expect("engine runs");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == xtask::rules::ALLOWLIST_SCOPE && v.message.contains("ssj-serve")),
        "{violations:?}"
    );
    let (code, stdout) = lint_exit(&fixture("servescope"));
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("allowlist-scope"));
}

#[test]
fn allowlist_cannot_exempt_store() {
    let violations = xtask::run_lint(&fixture("storescope")).expect("engine runs");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == xtask::rules::ALLOWLIST_SCOPE && v.message.contains("ssj-store")),
        "{violations:?}"
    );
    let (code, stdout) = lint_exit(&fixture("storescope"));
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("allowlist-scope"));
}

#[test]
fn workspace_is_clean() {
    // The acceptance gate: the real repo passes its own lint.
    let violations = xtask::run_lint(&repo_root()).expect("engine runs");
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{violations:#?}"
    );
}

#[test]
fn workspace_allowlist_has_no_core_server_or_store_entries() {
    let allow = xtask::load_allowlist(&repo_root()).expect("allowlist parses");
    assert!(
        allow.entries.iter().all(|e| !e.path.contains("crates/core")
            && !e.path.contains("crates/server")
            && !e.path.contains("crates/store")
            && !e.path.contains("crates/extern")
            && !e.path.contains("crates/cluster")),
        "none of ssj-core, ssj-serve, ssj-store, ssj-extern, ssj-cluster \
         may appear in lint_allow.toml"
    );
    // And every entry carries a reason (the parser enforces it; assert the
    // invariant holds for the checked-in file too).
    assert!(allow.entries.iter().all(|e| !e.reason.is_empty()));
}

#[test]
fn unknown_command_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2));
}
