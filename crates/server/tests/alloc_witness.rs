//! Allocation witness for the full serve read path (DESIGN.md §5g).
//!
//! Companion to `ssj-core/tests/alloc_witness.rs`, which pins the
//! per-shard building blocks; this one pins the end-to-end path a worker
//! thread runs per query — canonicalization, the ascending read-lock
//! recursion over every shard, signature generation, candidate sweeping,
//! verification, and global-id encoding — asserting a warmed
//! [`ShardedIndex::query_scratch`] call performs zero heap allocations.
//!
//! Strict assertions are release-only and skipped under the
//! `lock-witness` feature: both the debug lock-order witness and the
//! feature-enabled one allocate bookkeeping on every lock acquisition by
//! design. CI runs this file with `--release` and no features.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use ssj_core::set::ElementId;
use ssj_serve::service::ServeScratch;
use ssj_serve::{ServerConfig, ShardedIndex};

thread_local! {
    /// Heap allocations made by the current thread (allocs + reallocs).
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Forwards to the system allocator, counting per-thread allocations.
struct CountingAlloc;

// SAFETY: delegates wholesale to `System`; the thread-local counter is
// const-initialized, so bumping it never recurses into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it made on this thread.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let result = f();
    (ALLOCS.with(Cell::get) - before, result)
}

/// splitmix64 — deterministic element streams without external crates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn warmed_sharded_queries_allocate_nothing() {
    let cfg = ServerConfig {
        gamma: 0.6,
        shards: 4,
        initial_max_size: 32,
        seed: 7,
        ..ServerConfig::default()
    };
    let index = ShardedIndex::new(&cfg).expect("valid config");

    // Deterministic overlapping sets across all shards.
    let mut state = 0x5eed_0006u64;
    let mut sets: Vec<Vec<ElementId>> = Vec::new();
    for _ in 0..300 {
        let len = 4 + (splitmix64(&mut state) % 21) as usize;
        let mut set: Vec<ElementId> = (0..len)
            .map(|_| (splitmix64(&mut state) % 500) as ElementId)
            .collect();
        set.sort_unstable();
        set.dedup();
        index.insert(set.clone());
        sets.push(set);
    }

    let mut scratch = ServeScratch::default();
    let mut ids: Vec<u64> = Vec::new();

    // Warm-up: grow every scratch buffer to steady-state capacity.
    let mut warm_hits = 0usize;
    for set in sets.iter().take(64) {
        index.query_scratch(set, &mut scratch, &mut ids);
        warm_hits += ids.len();
    }
    // Self-queries find at least themselves: the workload is real.
    assert!(warm_hits >= 64, "warm-up produced no matches");

    let (allocs, hits) = count_allocs(|| {
        let mut hits = 0usize;
        for set in sets.iter().take(64) {
            index.query_scratch(black_box(set.as_slice()), &mut scratch, &mut ids);
            hits += ids.len();
        }
        hits
    });
    assert_eq!(hits, warm_hits, "steady-state pass must repeat the warm-up");
    if cfg!(any(debug_assertions, feature = "lock-witness")) {
        eprintln!(
            "ShardedIndex::query_scratch: {allocs} alloc(s) with lock witness active (not enforced)"
        );
    } else {
        assert_eq!(
            allocs, 0,
            "serve read path: expected zero steady-state allocations, observed {allocs}"
        );
    }
}
