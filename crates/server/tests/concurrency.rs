//! Linearizability check: N client threads hammer one server with a random
//! operation mix, then every response is validated against a
//! single-threaded oracle replay.
//!
//! The protocol makes this exact (see `service.rs` module docs): every
//! write response carries its global sequence number, and every query
//! response carries `seen_seq` — the query saw precisely the writes
//! numbered below it. The oracle replays the writes in sequence order and
//! recomputes each query answer by brute force; any deviation (a lost
//! write, a torn read across shards, a resurrected tombstone) fails the
//! assertion.

use rand::prelude::*;
use ssj_serve::{Request, Response, Server, ServerConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};

const GAMMA: f64 = 0.5;

#[derive(Debug, Clone)]
enum Write {
    Insert { seq: u64, id: u64, elems: Vec<u32> },
    Remove { seq: u64, id: u64, found: bool },
}

impl Write {
    fn seq(&self) -> u64 {
        match self {
            Write::Insert { seq, .. } | Write::Remove { seq, .. } => *seq,
        }
    }
}

#[derive(Debug, Clone)]
struct QueryObs {
    seen_seq: u64,
    elems: Vec<u32>,
    ids: Vec<u64>,
    /// For query_insert: the id of the probe's own insert (never allowed
    /// in its own match list).
    self_id: Option<u64>,
}

fn canonical(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

fn random_set(rng: &mut StdRng) -> Vec<u32> {
    // Small universe + small sets → plenty of accidental near-duplicates.
    let len = rng.gen_range(3usize..8);
    (0..len).map(|_| rng.gen_range(0u32..60)).collect()
}

/// Replays all observed writes in sequence order, recomputing every query
/// answer and every remove outcome by brute force.
fn oracle_check(mut writes: Vec<Write>, mut queries: Vec<QueryObs>) {
    writes.sort_by_key(Write::seq);
    for (i, w) in writes.iter().enumerate() {
        assert_eq!(
            w.seq(),
            i as u64,
            "write sequence numbers must be dense and unique: {writes:?}"
        );
    }
    queries.sort_by_key(|q| q.seen_seq);

    let mut state: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let mut next_write = 0usize;
    let apply = |state: &mut BTreeMap<u64, Vec<u32>>, w: &Write| match w {
        Write::Insert { id, elems, .. } => {
            let prior = state.insert(*id, canonical(elems.clone()));
            assert!(prior.is_none(), "global id {id} issued twice");
        }
        Write::Remove { id, found, .. } => {
            let was_live = state.remove(id).is_some();
            assert_eq!(
                was_live, *found,
                "remove({id}) reported found={found} but oracle disagrees"
            );
        }
    };

    for q in &queries {
        while next_write < writes.len() && writes[next_write].seq() < q.seen_seq {
            apply(&mut state, &writes[next_write]);
            next_write += 1;
        }
        let probe = canonical(q.elems.clone());
        let mut expected: Vec<u64> = state
            .iter()
            .filter(|&(id, set)| {
                Some(*id) != q.self_id && ssj_core::similarity::jaccard(&probe, set) >= GAMMA
            })
            .map(|(&id, _)| id)
            .collect();
        expected.sort_unstable();
        assert_eq!(
            q.ids, expected,
            "query at seen_seq={} answered {:?}, oracle expected {:?} (probe {:?})",
            q.seen_seq, q.ids, expected, probe
        );
    }
    // Drain the remaining writes so every remove outcome is validated.
    for w in writes.iter().skip(next_write) {
        apply(&mut state, w);
    }
}

#[test]
fn concurrent_clients_match_sequential_oracle() {
    const CLIENTS: usize = 4;
    const OPS_PER_CLIENT: usize = 150;

    let server = Server::start(ServerConfig {
        gamma: GAMMA,
        shards: 3,
        workers: 4,
        queue_capacity: 1024,
        seed: 7,
        ..ServerConfig::default()
    })
    .expect("valid config");

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut clients = Vec::new();
    for t in 0..CLIENTS {
        let handle = server.handle();
        let barrier = Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
            let mut writes = Vec::new();
            let mut queries = Vec::new();
            let mut my_ids: Vec<u64> = Vec::new();
            barrier.wait();
            for _ in 0..OPS_PER_CLIENT {
                match rng.gen_range(0u32..100) {
                    0..=39 => {
                        let elems = random_set(&mut rng);
                        match handle.call(Request::Insert {
                            elems: elems.clone(),
                        }) {
                            Response::Inserted { id, seq, .. } => {
                                my_ids.push(id);
                                writes.push(Write::Insert { seq, id, elems });
                            }
                            other => panic!("insert answered {other:?}"),
                        }
                    }
                    40..=64 => {
                        let elems = random_set(&mut rng);
                        match handle.call(Request::Query {
                            elems: elems.clone(),
                        }) {
                            Response::Matches { ids, seen_seq, .. } => queries.push(QueryObs {
                                seen_seq,
                                elems,
                                ids,
                                self_id: None,
                            }),
                            other => panic!("query answered {other:?}"),
                        }
                    }
                    65..=84 => {
                        let elems = random_set(&mut rng);
                        match handle.call(Request::QueryInsert {
                            elems: elems.clone(),
                        }) {
                            Response::QueryInserted { ids, id, seq, .. } => {
                                my_ids.push(id);
                                queries.push(QueryObs {
                                    seen_seq: seq,
                                    elems: elems.clone(),
                                    ids,
                                    self_id: Some(id),
                                });
                                writes.push(Write::Insert { seq, id, elems });
                            }
                            other => panic!("query_insert answered {other:?}"),
                        }
                    }
                    _ => {
                        // Remove a previously inserted id (sometimes one
                        // already removed, sometimes a bogus id).
                        let id = if my_ids.is_empty() || rng.gen_bool(0.1) {
                            rng.gen_range(0u64..1000)
                        } else {
                            my_ids[rng.gen_range(0..my_ids.len())]
                        };
                        match handle.call(Request::Remove { id }) {
                            Response::Removed { found, seq, .. } => {
                                writes.push(Write::Remove { seq, id, found })
                            }
                            other => panic!("remove answered {other:?}"),
                        }
                    }
                }
            }
            (writes, queries)
        }));
    }

    let mut all_writes = Vec::new();
    let mut all_queries = Vec::new();
    for c in clients {
        let (w, q) = c.join().expect("client thread");
        all_writes.extend(w);
        all_queries.extend(q);
    }

    let stats = server.stats();
    server.shutdown();

    let inserts = all_writes
        .iter()
        .filter(|w| matches!(w, Write::Insert { .. }))
        .count() as u64;
    let found_removes = all_writes
        .iter()
        .filter(|w| matches!(w, Write::Remove { found: true, .. }))
        .count() as u64;
    assert_eq!(
        stats.live_sets.iter().sum::<u64>(),
        inserts - found_removes,
        "per-shard live counts must reconcile with the op log"
    );

    oracle_check(all_writes, all_queries);
}
