//! Durability integration tests: acked writes survive restarts — graceful
//! and not — through the real wire protocol, and snapshots compact
//! tombstones away.

use ssj_serve::net::{client_call, serve_tcp};
use ssj_serve::{Request, Response, Server, ServerConfig, ShardedIndex, SyncMode};
use std::net::TcpListener;
use std::path::{Path, PathBuf};

/// A fresh per-test data directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssj_persist_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cfg(dir: &Path, sync: SyncMode) -> ServerConfig {
    ServerConfig {
        shards: 3,
        workers: 2,
        data_dir: Some(dir.to_path_buf()),
        sync,
        ..ServerConfig::default()
    }
}

fn json_u64(line: &str, key: &str) -> u64 {
    let v = ssj_io::json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    let obj = v.as_object().unwrap_or_else(|e| panic!("{line}: {e}"));
    obj.get(key)
        .unwrap_or_else(|| panic!("{line}: missing {key}"))
        .as_u64()
        .unwrap_or_else(|e| panic!("{line}: {e}"))
}

fn json_ids(line: &str) -> Vec<u64> {
    let v = ssj_io::json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    let obj = v.as_object().unwrap_or_else(|e| panic!("{line}: {e}"));
    obj["ids"]
        .as_array()
        .unwrap_or_else(|e| panic!("{line}: {e}"))
        .iter()
        .map(|x| x.as_u64().expect("id"))
        .collect()
}

/// Starts a TCP frontend for `cfg`; returns the address and the join
/// handle of the accept loop.
fn spawn_tcp(cfg: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::start(cfg).expect("server starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("addr").to_string();
    let h = std::thread::spawn(move || serve_tcp(server, listener));
    (addr, h)
}

#[test]
fn graceful_restart_preserves_acked_writes_over_the_wire() {
    let dir = test_dir("graceful");
    let (addr, srv) = spawn_tcp(durable_cfg(&dir, SyncMode::Every));

    let ins = client_call(&addr, r#"{"op":"insert","set":[1,2,3,4,5]}"#).expect("insert");
    assert!(ins.contains("\"ok\":true"), "{ins}");
    let kept = json_u64(&ins, "id");
    // With sync=every the ack itself certifies durability: the watermark
    // must already cover this write's seq.
    assert!(
        json_u64(&ins, "durable_seq") > json_u64(&ins, "seq"),
        "{ins}"
    );

    let ins2 = client_call(&addr, r#"{"op":"insert","set":[100,200,300]}"#).expect("insert2");
    let doomed = json_u64(&ins2, "id");
    let rm = client_call(&addr, &format!(r#"{{"op":"remove","id":{doomed}}}"#)).expect("remove");
    assert!(rm.contains("\"found\":true"), "{rm}");

    let bye = client_call(&addr, r#"{"op":"shutdown"}"#).expect("shutdown");
    assert!(bye.contains("\"op\":\"shutdown\""), "{bye}");
    srv.join().expect("thread").expect("serve_tcp io");

    // Same directory, fresh process-equivalent: recovery must reproduce
    // exactly the acked history — the kept set, and not the removed one.
    let (addr, srv) = spawn_tcp(durable_cfg(&dir, SyncMode::Every));
    let q = client_call(&addr, r#"{"op":"query","set":[1,2,3,4,5]}"#).expect("query");
    assert_eq!(json_ids(&q), vec![kept], "{q}");
    let q2 = client_call(&addr, r#"{"op":"query","set":[100,200,300]}"#).expect("query2");
    assert!(json_ids(&q2).is_empty(), "removed set resurfaced: {q2}");
    let bye = client_call(&addr, r#"{"op":"shutdown"}"#).expect("shutdown");
    assert!(bye.contains("\"op\":\"shutdown\""), "{bye}");
    srv.join().expect("thread").expect("serve_tcp io");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_without_drain_preserves_durably_acked_writes() {
    let dir = test_dir("kill");
    let server = Server::start(durable_cfg(&dir, SyncMode::Every)).expect("server starts");
    let handle = server.handle();

    // Run the real wire protocol over an in-memory session so the "kill"
    // below can bypass every graceful-shutdown path.
    let script = concat!(
        "{\"op\":\"insert\",\"set\":[10,20,30]}\n",
        "{\"op\":\"query_insert\",\"set\":[7,8,9]}\n",
        "{\"op\":\"insert\",\"set\":[42,43]}\n",
    );
    let mut out = Vec::new();
    ssj_serve::net::serve_connection(&handle, script.as_bytes(), &mut out).expect("session");
    let lines: Vec<String> = std::str::from_utf8(&out)
        .expect("utf8")
        .lines()
        .map(|l| l.to_string())
        .collect();
    assert_eq!(lines.len(), 3);
    let mut acked = Vec::new();
    for line in &lines {
        assert!(line.contains("\"ok\":true"), "{line}");
        // sync=every: every acked write is durable at ack time.
        assert!(
            json_u64(line, "durable_seq") > json_u64(line, "seq"),
            "{line}"
        );
        acked.push(json_u64(line, "id"));
    }

    // Simulated crash: no drain, no flush, no WAL truncation — the
    // process just stops caring. (Worker threads leak until test exit.)
    std::mem::forget(server);

    let recovered =
        ShardedIndex::open(&durable_cfg(&dir, SyncMode::Every)).expect("recovery succeeds");
    for (elems, id) in [
        (vec![10u32, 20, 30], acked[0]),
        (vec![7, 8, 9], acked[1]),
        (vec![42, 43], acked[2]),
    ] {
        let (ids, _, _) = recovered.query(elems.clone());
        assert!(
            ids.contains(&id),
            "acked write {id} ({elems:?}) lost across kill+restart"
        );
    }
    assert_eq!(recovered.seq(), 3, "sequence counter must resume past acks");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_flush_covers_unsynced_acks() {
    let dir = test_dir("drain_flush");
    // sync=never: acks carry a durability watermark that lags arbitrarily.
    // Graceful drain must still fsync the tail, so a clean shutdown loses
    // nothing even under the weakest sync policy.
    let server = Server::start(durable_cfg(&dir, SyncMode::Never)).expect("server starts");
    let handle = server.handle();
    let id = match handle.call(Request::Insert {
        elems: vec![5, 6, 7, 8],
    }) {
        Response::Inserted { id, .. } => id,
        other => panic!("unexpected {other:?}"),
    };
    server.shutdown();

    let recovered =
        ShardedIndex::open(&durable_cfg(&dir, SyncMode::Never)).expect("recovery succeeds");
    let (ids, _, _) = recovered.query(vec![5, 6, 7, 8]);
    assert_eq!(ids, vec![id], "write acked before graceful shutdown lost");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_compact_tombstones_away() {
    let dir = test_dir("compact");
    let cfg = ServerConfig {
        snapshot_every: 0, // explicit snapshots only
        ..durable_cfg(&dir, SyncMode::Never)
    };
    let idx = ShardedIndex::open(&cfg).expect("open");
    let mut ids = Vec::new();
    for i in 0..200u32 {
        let base = i * 50;
        let (id, _) = idx.insert((base..base + 12).collect());
        ids.push(id);
    }
    idx.snapshot_now().expect("first snapshot");
    let full_size = snapshot_bytes(&dir);

    // Delete-heavy workload: tombstone 90% of the sets …
    for &id in &ids[..180] {
        let (found, _) = idx.remove(id);
        assert!(found);
    }
    idx.snapshot_now().expect("second snapshot");
    // … and the compacted snapshots must shrink accordingly: dead entries
    // are dropped, not carried forward as tombstone markers.
    let compacted_size = snapshot_bytes(&dir);
    assert!(
        compacted_size < full_size / 2,
        "snapshots did not compact: {full_size} bytes before, {compacted_size} after"
    );

    // The compacted state still recovers to exactly the live tail.
    drop(idx);
    let recovered = ShardedIndex::open(&cfg).expect("recovery succeeds");
    for &id in &ids[180..] {
        let (found, _) = recovered.remove(id);
        assert!(found, "live set {id} lost by compaction");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Total size of all `shard-*.snap` files in `dir`.
fn snapshot_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("entry");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("shard-") && name.ends_with(".snap") {
            total += entry.metadata().expect("metadata").len();
        }
    }
    total
}
