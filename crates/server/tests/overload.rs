//! Admission-control behaviour under pressure: a queue bound of Q with
//! more than Q requests in flight must answer `Overloaded`/`Timeout` —
//! never panic, never block forever — and shutdown must drain cleanly.
//!
//! Determinism on any machine (including single-core CI) comes from the
//! `worker_delay` fault-injection knob: one worker that pauses before each
//! job keeps the queue occupied for as long as the test needs.

use ssj_serve::{Request, Response, Server, ServerConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn slow_config(queue_capacity: usize, delay_ms: u64) -> ServerConfig {
    ServerConfig {
        shards: 2,
        workers: 1,
        queue_capacity,
        worker_delay: Duration::from_millis(delay_ms),
        ..ServerConfig::default()
    }
}

fn fan_out(server: &Server, clients: usize, deadline: Option<Duration>) -> Vec<Response> {
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            let handle = server.handle();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let base = i as u32 * 100;
                handle.call_with_deadline(
                    Request::Insert {
                        elems: (base..base + 5).collect(),
                    },
                    deadline,
                )
            })
        })
        .collect();
    threads
        .into_iter()
        .map(|t| t.join().expect("client thread must not panic"))
        .collect()
}

#[test]
fn full_queue_rejects_with_overloaded() {
    const QUEUE: usize = 2;
    const CLIENTS: usize = 8;
    let server = Server::start(slow_config(QUEUE, 30)).expect("valid config");
    let responses = fan_out(&server, CLIENTS, None);

    let inserted = responses
        .iter()
        .filter(|r| matches!(r, Response::Inserted { .. }))
        .count();
    let overloaded = responses
        .iter()
        .filter(|r| matches!(r, Response::Overloaded))
        .count();
    assert_eq!(
        inserted + overloaded,
        CLIENTS,
        "every request gets exactly one definite answer: {responses:?}"
    );
    // With one worker pausing 30ms per job, at most 1 in-flight + QUEUE
    // queued requests can be admitted from a simultaneous burst of 8;
    // the rest must be turned away at the door.
    assert!(
        overloaded >= 1,
        "queue bound {QUEUE} with {CLIENTS} in flight must overload: {responses:?}"
    );
    assert!(inserted >= 1, "the in-flight request must succeed");

    let stats = server.stats();
    assert_eq!(stats.overloaded, overloaded as u64);
    assert_eq!(stats.accepted, inserted as u64);
    assert_eq!(stats.live_sets.iter().sum::<u64>(), inserted as u64);
    server.shutdown();
}

#[test]
fn expired_deadlines_answer_timeout_without_executing() {
    const CLIENTS: usize = 5;
    let server = Server::start(slow_config(64, 40)).expect("valid config");
    let responses = fan_out(&server, CLIENTS, Some(Duration::from_millis(5)));

    let inserted = responses
        .iter()
        .filter(|r| matches!(r, Response::Inserted { .. }))
        .count();
    let timeouts = responses
        .iter()
        .filter(|r| matches!(r, Response::Timeout))
        .count();
    assert_eq!(
        inserted + timeouts,
        CLIENTS,
        "burst answers must be Inserted or Timeout: {responses:?}"
    );
    // Jobs behind the first wait ≥ 40ms (the worker's delay) with a 5ms
    // deadline, so at least one must expire.
    assert!(timeouts >= 1, "{responses:?}");

    let stats = server.stats();
    assert_eq!(stats.timeouts, timeouts as u64);
    // Timed-out work is never executed: the index only holds the sets
    // whose inserts really ran.
    assert_eq!(stats.live_sets.iter().sum::<u64>(), inserted as u64);
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_work_and_rejects_later_calls() {
    let server = Server::start(slow_config(64, 10)).expect("valid config");
    let handle = server.handle();

    // Admit a burst, then immediately shut down: every admitted request
    // must still be answered (FIFO drain), not dropped.
    let responses = fan_out(&server, 4, None);
    assert!(
        responses
            .iter()
            .all(|r| matches!(r, Response::Inserted { .. })),
        "{responses:?}"
    );
    server.shutdown();

    assert!(handle.is_draining());
    assert_eq!(handle.call(Request::Stats), Response::ShuttingDown);
    assert_eq!(
        handle.call(Request::Insert { elems: vec![1, 2] }),
        Response::ShuttingDown
    );
}

#[test]
fn drain_races_with_inflight_clients_without_hanging() {
    // Clients submitting while another thread shuts the server down must
    // each receive a definite response — Inserted if admitted before the
    // drain, ShuttingDown otherwise — and the whole dance must terminate.
    let server = Server::start(slow_config(8, 5)).expect("valid config");
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let handle = server.handle();
            std::thread::spawn(move || {
                handle.call(Request::Insert {
                    elems: vec![i as u32, i as u32 + 1],
                })
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    server.shutdown();
    for c in clients {
        let resp = c.join().expect("client thread");
        assert!(
            matches!(
                resp,
                Response::Inserted { .. } | Response::ShuttingDown | Response::Overloaded
            ),
            "unexpected {resp:?}"
        );
    }
}
