//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, over TCP or stdio.
//! Requests are objects with an `"op"` discriminator:
//!
//! ```json
//! {"op":"insert","set":[1,2,3]}
//! {"op":"query","set":[1,2,3],"deadline_ms":50}
//! {"op":"query_insert","set":[4,5,6]}
//! {"op":"remove","id":12}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Successful responses carry `"ok":true` plus the op's payload; failures
//! carry `"ok":false` and an `"error"` discriminator (`"overloaded"`,
//! `"timeout"`, `"shutting_down"`, or `"bad_request"` with a message):
//!
//! ```json
//! {"ok":true,"op":"insert","id":12,"seq":3}
//! {"ok":true,"op":"query","ids":[12],"seen_seq":4,"probed":7}
//! {"ok":false,"error":"overloaded"}
//! ```
//!
//! Malformed lines never kill a connection: they are answered with a
//! `bad_request` response and the session continues.

use crate::metrics::{HistogramSnapshot, StatsSnapshot};
use crate::service::{Request, Response};
use ssj_core::set::ElementId;
use ssj_io::json::{parse, write_escaped};
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed client line: either a service request (with an optional
/// per-request deadline) or the session-level shutdown command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Submit this to the service.
    Call {
        /// The operation.
        req: Request,
        /// Queue deadline override from `"deadline_ms"`.
        deadline: Option<Duration>,
    },
    /// `{"op":"shutdown"}`: drain the server and close.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let value = parse(line)?;
    let obj = value.as_object()?;
    let op = obj
        .get("op")
        .ok_or_else(|| "missing \"op\" field".to_string())?
        .as_str()?;
    let deadline = match obj.get("deadline_ms") {
        Some(v) => Some(Duration::from_millis(v.as_u64()?)),
        None => None,
    };
    let set_field = || -> Result<Vec<ElementId>, String> {
        let items = obj
            .get("set")
            .ok_or_else(|| format!("op {op:?} requires a \"set\" array"))?
            .as_array()?;
        items
            .iter()
            .map(|v| {
                let x = v.as_u64()?;
                ElementId::try_from(x).map_err(|_| format!("element {x} exceeds the u32 domain"))
            })
            .collect()
    };
    let req = match op {
        "insert" => Request::Insert {
            elems: set_field()?,
        },
        "query" => Request::Query {
            elems: set_field()?,
        },
        "query_insert" => Request::QueryInsert {
            elems: set_field()?,
        },
        "remove" => Request::Remove {
            id: obj
                .get("id")
                .ok_or_else(|| "op \"remove\" requires an \"id\" field".to_string())?
                .as_u64()?,
        },
        "stats" => Request::Stats,
        "compact" => Request::Compact,
        "seg_get" => Request::SegGet {
            id: obj
                .get("id")
                .ok_or_else(|| "op \"seg_get\" requires an \"id\" field".to_string())?
                .as_u64()?,
        },
        "tail" => Request::Tail {
            from_seq: obj
                .get("from_seq")
                .ok_or_else(|| "op \"tail\" requires a \"from_seq\" field".to_string())?
                .as_u64()?,
        },
        "snap_fetch" => Request::SnapFetch,
        "shutdown" => return Ok(WireRequest::Shutdown),
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(WireRequest::Call { req, deadline })
}

/// Appends `bytes` as a lowercase-hex JSON string (with quotes). Binary
/// payloads — shipped snapshot images, WAL frames — cross the NDJSON wire
/// in this form: the framing and checksums inside stay byte-identical to
/// the on-disk formats, hex is only the JSON-safe envelope.
pub fn write_hex(out: &mut String, bytes: &[u8]) {
    out.push('"');
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out.push('"');
}

/// Decodes a lowercase-hex string written by [`write_hex`] (quotes already
/// stripped by the JSON parser).
pub fn parse_hex(s: &str) -> Result<Vec<u8>, String> {
    let digits = s.as_bytes();
    if !digits.len().is_multiple_of(2) {
        return Err("hex payload has odd length".into());
    }
    let nibble = |d: u8| -> Result<u8, String> {
        match d {
            b'0'..=b'9' => Ok(d - b'0'),
            b'a'..=b'f' => Ok(d - b'a' + 10),
            other => Err(format!("bad hex digit {:?}", other as char)),
        }
    };
    digits
        .chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

/// Appends `,"durable_seq":N` when the server is durable; memory-only
/// servers omit the field entirely, keeping their response lines
/// byte-identical to the pre-persistence protocol.
fn write_durable(out: &mut String, durable: Option<u64>) {
    if let Some(d) = durable {
        let _ = write!(out, ",\"durable_seq\":{d}");
    }
}

fn write_ids(out: &mut String, ids: &[u64]) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        h.count,
        h.mean_micros(),
        h.quantile_micros(0.5),
        h.quantile_micros(0.95),
        h.quantile_micros(0.99),
    );
}

fn write_stats(out: &mut String, s: &StatsSnapshot) {
    let _ = write!(out, "\"seq\":{},", s.seq);
    let _ = write!(
        out,
        "\"accepted\":{},\"overloaded\":{},\"timeouts\":{},",
        s.accepted, s.overloaded, s.timeouts
    );
    out.push_str("\"live_sets\":");
    write_ids(out, &s.live_sets);
    out.push_str(",\"shards\":[");
    for (i, c) in s.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"inserts\":{},\"removes\":{},\"queries\":{},\"candidates_probed\":{},\"bitmap_pruned\":{},\"verified_hits\":{}}}",
            c.inserts, c.removes, c.queries, c.candidates_probed, c.bitmap_pruned, c.verified_hits
        );
    }
    out.push_str("],\"queue_wait\":");
    write_histogram(out, &s.queue_wait);
    out.push_str(",\"service_time\":");
    write_histogram(out, &s.service_time);
}

/// Encodes one response line (without the trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let mut out = String::new();
    match resp {
        Response::Inserted { id, seq, durable } => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"op\":\"insert\",\"id\":{id},\"seq\":{seq}"
            );
            write_durable(&mut out, *durable);
            out.push('}');
        }
        Response::Removed {
            found,
            seq,
            durable,
        } => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"op\":\"remove\",\"found\":{found},\"seq\":{seq}"
            );
            write_durable(&mut out, *durable);
            out.push('}');
        }
        Response::Matches {
            ids,
            seen_seq,
            probed,
        } => {
            out.push_str("{\"ok\":true,\"op\":\"query\",\"ids\":");
            write_ids(&mut out, ids);
            let _ = write!(out, ",\"seen_seq\":{seen_seq},\"probed\":{probed}}}");
        }
        Response::QueryInserted {
            ids,
            id,
            seq,
            probed,
            durable,
        } => {
            out.push_str("{\"ok\":true,\"op\":\"query_insert\",\"ids\":");
            write_ids(&mut out, ids);
            let _ = write!(out, ",\"id\":{id},\"seq\":{seq},\"probed\":{probed}");
            write_durable(&mut out, *durable);
            out.push('}');
        }
        Response::Stats(s) => {
            out.push_str("{\"ok\":true,\"op\":\"stats\",");
            write_stats(&mut out, s);
            out.push('}');
        }
        Response::Compacted { seq, sets, file } => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"op\":\"compact\",\"seq\":{seq},\"sets\":{sets},\"file\":"
            );
            write_escaped(&mut out, file);
            out.push('}');
        }
        Response::SegmentSet {
            id,
            elems,
            segment_seq,
        } => {
            let _ = write!(out, "{{\"ok\":true,\"op\":\"seg_get\",\"id\":{id},");
            match elems {
                Some(elems) => {
                    out.push_str("\"found\":true,\"set\":[");
                    for (i, e) in elems.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{e}");
                    }
                    out.push(']');
                }
                None => out.push_str("\"found\":false"),
            }
            let _ = write!(out, ",\"segment_seq\":{segment_seq}}}");
        }
        Response::WalTail { from_seq, frames } => {
            let _ = write!(out, "{{\"ok\":true,\"op\":\"tail\",\"from_seq\":{from_seq}");
            match frames {
                Some(frames) => {
                    out.push_str(",\"frames\":");
                    write_hex(&mut out, frames);
                }
                None => out.push_str(",\"truncated\":true"),
            }
            out.push('}');
        }
        Response::Snapshots { seq, shards } => {
            let _ = write!(
                out,
                "{{\"ok\":true,\"op\":\"snap_fetch\",\"seq\":{seq},\"shards\":["
            );
            for (i, image) in shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_hex(&mut out, image);
            }
            out.push_str("]}");
        }
        Response::Overloaded => out.push_str("{\"ok\":false,\"error\":\"overloaded\"}"),
        Response::Timeout => out.push_str("{\"ok\":false,\"error\":\"timeout\"}"),
        Response::ShuttingDown => out.push_str("{\"ok\":false,\"error\":\"shutting_down\"}"),
        Response::Error(msg) => {
            out.push_str("{\"ok\":false,\"error\":\"bad_request\",\"message\":");
            write_escaped(&mut out, msg);
            out.push('}');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShardCountersSnapshot;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            parse_request(r#"{"op":"insert","set":[3,1,2]}"#).unwrap(),
            WireRequest::Call {
                req: Request::Insert {
                    elems: vec![3, 1, 2]
                },
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"query","set":[7],"deadline_ms":250}"#).unwrap(),
            WireRequest::Call {
                req: Request::Query { elems: vec![7] },
                deadline: Some(Duration::from_millis(250))
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"remove","id":42}"#).unwrap(),
            WireRequest::Call {
                req: Request::Remove { id: 42 },
                deadline: None
            }
        );
        assert!(matches!(
            parse_request(r#"{"op":"query_insert","set":[]}"#).unwrap(),
            WireRequest::Call {
                req: Request::QueryInsert { .. },
                ..
            }
        ));
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            WireRequest::Call {
                req: Request::Stats,
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"compact"}"#).unwrap(),
            WireRequest::Call {
                req: Request::Compact,
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"seg_get","id":9}"#).unwrap(),
            WireRequest::Call {
                req: Request::SegGet { id: 9 },
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"tail","from_seq":17}"#).unwrap(),
            WireRequest::Call {
                req: Request::Tail { from_seq: 17 },
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"snap_fetch"}"#).unwrap(),
            WireRequest::Call {
                req: Request::SnapFetch,
                deadline: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        );
    }

    #[test]
    fn hex_envelope_round_trips() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0x0f, 0x5e],
            (0..=255).collect(),
        ] {
            let mut s = String::new();
            write_hex(&mut s, &bytes);
            assert!(s.starts_with('"') && s.ends_with('"'));
            assert_eq!(parse_hex(&s[1..s.len() - 1]).unwrap(), bytes);
        }
        assert!(parse_hex("abc").is_err());
        assert!(parse_hex("zz").is_err());
    }

    #[test]
    fn tail_and_snapshot_responses_encode() {
        let line = encode_response(&Response::WalTail {
            from_seq: 3,
            frames: Some(vec![0xab, 0x01]),
        });
        assert_eq!(
            line,
            r#"{"ok":true,"op":"tail","from_seq":3,"frames":"ab01"}"#
        );
        let line = encode_response(&Response::WalTail {
            from_seq: 3,
            frames: None,
        });
        assert_eq!(
            line,
            r#"{"ok":true,"op":"tail","from_seq":3,"truncated":true}"#
        );
        let line = encode_response(&Response::Snapshots {
            seq: 9,
            shards: vec![vec![0x01], vec![0x02, 0x03]],
        });
        assert_eq!(
            line,
            r#"{"ok":true,"op":"snap_fetch","seq":9,"shards":["01","0203"]}"#
        );
        for resp in [
            Response::WalTail {
                from_seq: 0,
                frames: Some(Vec::new()),
            },
            Response::Snapshots {
                seq: 0,
                shards: Vec::new(),
            },
        ] {
            let line = encode_response(&resp);
            assert!(ssj_io::json::parse(&line).is_ok(), "{line}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[]").is_err());
        assert!(parse_request(r#"{"set":[1]}"#).is_err());
        assert!(parse_request(r#"{"op":"warp"}"#).is_err());
        assert!(parse_request(r#"{"op":"insert"}"#).is_err());
        assert!(parse_request(r#"{"op":"insert","set":[4294967296]}"#).is_err());
        assert!(parse_request(r#"{"op":"remove","id":-1}"#).is_err());
        assert!(parse_request(r#"{"op":"seg_get"}"#).is_err());
    }

    #[test]
    fn responses_encode_as_parseable_json() {
        let cases = vec![
            Response::Inserted {
                id: 5,
                seq: 2,
                durable: None,
            },
            Response::Inserted {
                id: 5,
                seq: 2,
                durable: Some(3),
            },
            Response::Removed {
                found: true,
                seq: 3,
                durable: Some(4),
            },
            Response::Matches {
                ids: vec![1, 9],
                seen_seq: 4,
                probed: 17,
            },
            Response::QueryInserted {
                ids: vec![],
                id: 8,
                seq: 5,
                probed: 0,
                durable: None,
            },
            Response::Compacted {
                seq: 7,
                sets: 2,
                file: "/tmp/x/segment-0000000000000007.seg".into(),
            },
            Response::SegmentSet {
                id: 4,
                elems: Some(vec![1, 2, 3]),
                segment_seq: 7,
            },
            Response::SegmentSet {
                id: 5,
                elems: None,
                segment_seq: 7,
            },
            Response::Overloaded,
            Response::Timeout,
            Response::ShuttingDown,
            Response::Error("bad \"stuff\"".into()),
        ];
        for resp in cases {
            let line = encode_response(&resp);
            let v = ssj_io::json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let obj = v.as_object().unwrap();
            assert!(obj.contains_key("ok"), "{line}");
        }
    }

    #[test]
    fn durable_seq_emitted_only_when_present() {
        let without = encode_response(&Response::Inserted {
            id: 5,
            seq: 2,
            durable: None,
        });
        assert_eq!(without, r#"{"ok":true,"op":"insert","id":5,"seq":2}"#);
        let with = encode_response(&Response::Inserted {
            id: 5,
            seq: 2,
            durable: Some(3),
        });
        assert_eq!(
            with,
            r#"{"ok":true,"op":"insert","id":5,"seq":2,"durable_seq":3}"#
        );
    }

    #[test]
    fn query_response_fields_round_trip() {
        let line = encode_response(&Response::Matches {
            ids: vec![3, 11],
            seen_seq: 9,
            probed: 2,
        });
        let v = ssj_io::json::parse(&line).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["ok"], ssj_io::json::Value::Bool(true));
        let ids: Vec<u64> = obj["ids"]
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 11]);
        assert_eq!(obj["seen_seq"].as_u64().unwrap(), 9);
    }

    #[test]
    fn stats_response_encodes() {
        let s = StatsSnapshot {
            live_sets: vec![2, 1],
            shards: vec![ShardCountersSnapshot::default(); 2],
            seq: 3,
            accepted: 5,
            overloaded: 1,
            timeouts: 0,
            queue_wait: HistogramSnapshot {
                buckets: vec![0; 4],
                count: 0,
                sum_micros: 0,
            },
            service_time: HistogramSnapshot {
                buckets: vec![0; 4],
                count: 0,
                sum_micros: 0,
            },
        };
        let line = encode_response(&Response::Stats(s));
        let v = ssj_io::json::parse(&line).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["seq"].as_u64().unwrap(), 3);
        assert_eq!(obj["overloaded"].as_u64().unwrap(), 1);
        assert_eq!(obj["live_sets"].as_array().unwrap().len(), 2);
    }
}
