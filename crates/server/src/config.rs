//! Server configuration.

use ssj_store::SyncMode;
use std::path::PathBuf;
use std::time::Duration;

/// Tunables for a [`crate::service::Server`].
///
/// The defaults suit an interactive instance on a developer machine; the
/// bench harness and the CLI override most of them.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Jaccard similarity threshold `γ` served by the index.
    pub gamma: f64,
    /// Number of index shards. Sets are routed to a shard by content hash;
    /// more shards mean finer-grained write locking.
    pub shards: usize,
    /// Number of worker threads executing requests. `0` auto-detects the
    /// machine's parallelism.
    pub workers: usize,
    /// Bound on the request queue. When the queue is full new requests are
    /// rejected with an `Overloaded` response instead of waiting.
    pub queue_capacity: usize,
    /// Initial set-size coverage of each shard's signature scheme; grown
    /// automatically on demand.
    pub initial_max_size: usize,
    /// Admission bound on request set sizes: an insert/query whose set has
    /// more elements answers a `bad_request` error instead of being
    /// executed. Bounds the scheme-rebuild work a single client can force.
    pub max_set_len: usize,
    /// Seed for the signature schemes and the shard router.
    pub seed: u64,
    /// Deadline applied to requests that don't carry their own: a request
    /// that waited in the queue longer than this is answered `Timeout`
    /// without being executed.
    pub default_deadline: Duration,
    /// Artificial pause a worker takes before executing each request.
    /// Fault-injection knob for tests (deterministic overload/timeout on
    /// any machine); keep at zero in production.
    pub worker_delay: Duration,
    /// Data directory for durable persistence (`None`: memory-only, the
    /// historical behavior). When set, every write is WAL-logged before it
    /// is acked and the index is recovered from disk on startup.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy when `data_dir` is set; ignored otherwise.
    pub sync: SyncMode,
    /// Automatic snapshot cadence: after this many writes the shards are
    /// snapshotted and the WAL truncated. `0` disables automatic
    /// snapshots (the WAL then grows until shutdown or an explicit
    /// snapshot). Ignored without `data_dir`.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            gamma: 0.8,
            shards: 4,
            workers: 0,
            queue_capacity: 128,
            initial_max_size: 64,
            max_set_len: 1 << 16,
            seed: 42,
            default_deadline: Duration::from_secs(5),
            worker_delay: Duration::ZERO,
            data_dir: None,
            sync: SyncMode::Every,
            snapshot_every: 8192,
        }
    }
}

impl ServerConfig {
    /// The worker count with `0` resolved to the machine's parallelism.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }
}

/// Resolves a `--threads`-style count: `0` means auto-detect via
/// [`std::thread::available_parallelism`] (falling back to 1 if the
/// platform can't say), anything else is taken as-is.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_auto_detects() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
        let cfg = ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        };
        assert!(cfg.effective_workers() >= 1);
    }
}
