//! Network and stdio frontends for the wire protocol.
//!
//! [`serve_connection`] runs one newline-delimited JSON session over any
//! `BufRead`/`Write` pair; [`serve_tcp`] accepts TCP clients and runs each
//! on its own thread; [`serve_stdio`] runs a single session over the
//! process's stdin/stdout. A `{"op":"shutdown"}` line from any session
//! triggers a graceful drain of the whole server.

use crate::service::{Handle, Response, Server};
use crate::wire::{encode_response, parse_request, WireRequest};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed its end of the connection.
    Eof,
    /// The client sent `{"op":"shutdown"}`.
    Shutdown,
}

/// Runs one wire-protocol session: one response line per request line.
///
/// Malformed lines are answered with a `bad_request` response and the
/// session continues; only I/O failures and shutdown end it.
pub fn serve_connection<R: BufRead, W: Write>(
    handle: &Handle,
    input: R,
    mut output: W,
) -> io::Result<SessionEnd> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Err(msg) => encode_response(&Response::Error(msg)),
            Ok(WireRequest::Call { req, deadline }) => {
                encode_response(&handle.call_with_deadline(req, deadline))
            }
            Ok(WireRequest::Shutdown) => {
                output.write_all(b"{\"ok\":true,\"op\":\"shutdown\"}\n")?;
                output.flush()?;
                return Ok(SessionEnd::Shutdown);
            }
        };
        output.write_all(reply.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(SessionEnd::Eof)
}

/// Serves TCP clients on `listener` until one of them sends
/// `{"op":"shutdown"}`, then drains the server and returns.
///
/// Each connection runs on its own thread with a cloned [`Handle`]. Once a
/// shutdown arrives, the accept loop is woken by a loop-back connection,
/// in-queue requests are answered, and still-connected clients receive
/// `shutting_down` responses to any further calls.
pub fn serve_tcp(server: Server, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let handle = server.handle();
        let stop = Arc::clone(&stop);
        // Detached on purpose: a lingering client cannot block shutdown —
        // its future calls answer `shutting_down`, and the thread dies
        // with the process.
        let _ = std::thread::Builder::new()
            .name("ssj-serve-conn".to_string())
            .spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let outcome = serve_connection(&handle, BufReader::new(read_half), &stream);
                if matches!(outcome, Ok(SessionEnd::Shutdown)) {
                    stop.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
    }
    // Drain (which flushes the WAL to stable storage on a durable server)
    // completes *before* this function returns and drops the listener, so
    // every write acked over a connection is on disk by the time the port
    // closes.
    server.shutdown();
    Ok(())
}

/// Runs one session over the process's stdin/stdout, then drains the
/// server (whether the session ended by EOF or an explicit shutdown).
pub fn serve_stdio(server: Server) -> io::Result<SessionEnd> {
    let handle = server.handle();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let end = serve_connection(&handle, stdin.lock(), stdout.lock())?;
    server.shutdown();
    Ok(end)
}

/// One-shot client: sends `line` to a wire-protocol server at `addr` and
/// returns the single response line.
pub fn client_call(addr: &str, line: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::service::Server;

    fn test_server() -> Server {
        Server::start(ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn scripted_stdio_style_session() {
        let server = test_server();
        let handle = server.handle();
        let script = concat!(
            "{\"op\":\"insert\",\"set\":[1,2,3,4,5]}\n",
            "\n", // blank lines are ignored
            "{\"op\":\"query\",\"set\":[1,2,3,4,5]}\n",
            "not json\n",
            "{\"op\":\"stats\"}\n",
        );
        let mut out = Vec::new();
        let end = serve_connection(&handle, script.as_bytes(), &mut out).expect("io ok");
        assert_eq!(end, SessionEnd::Eof);
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"op\":\"insert\""), "{}", lines[0]);
        assert!(lines[1].contains("\"ids\":["), "{}", lines[1]);
        assert!(lines[2].contains("bad_request"), "{}", lines[2]);
        assert!(lines[3].contains("\"op\":\"stats\""), "{}", lines[3]);
        server.shutdown();
    }

    #[test]
    fn oversized_set_answers_wire_error_and_session_continues() {
        let server = Server::start(ServerConfig {
            shards: 2,
            workers: 2,
            max_set_len: 4,
            ..ServerConfig::default()
        })
        .expect("valid config");
        let handle = server.handle();
        let script = concat!(
            "{\"op\":\"insert\",\"set\":[1,2,3,4,5,6,7,8]}\n",
            "{\"op\":\"query\",\"set\":[9,8,7,6,5,4,3,2,1]}\n",
            "{\"op\":\"insert\",\"set\":[1,2,3]}\n",
        );
        let mut out = Vec::new();
        let end = serve_connection(&handle, script.as_bytes(), &mut out).expect("io ok");
        assert_eq!(end, SessionEnd::Eof);
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("bad_request") && lines[0].contains("max_set_len"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("bad_request"), "{}", lines[1]);
        assert!(lines[2].contains("\"op\":\"insert\""), "{}", lines[2]);
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_with_shutdown() {
        let server = test_server();
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("addr").to_string();
        let srv = std::thread::spawn(move || serve_tcp(server, listener));
        let insert = client_call(&addr, "{\"op\":\"insert\",\"set\":[9,8,7]}").expect("insert");
        assert!(insert.contains("\"ok\":true"), "{insert}");
        let query = client_call(&addr, "{\"op\":\"query\",\"set\":[7,8,9]}").expect("query");
        assert!(query.contains("\"ids\":["), "{query}");
        let bye = client_call(&addr, "{\"op\":\"shutdown\"}").expect("shutdown");
        assert!(bye.contains("\"op\":\"shutdown\""), "{bye}");
        srv.join().expect("server thread").expect("serve_tcp io");
    }
}
