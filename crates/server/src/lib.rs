//! # ssj-serve — a concurrent similarity-search service
//!
//! Long-running serving layer over [`ssj_core::index::JaccardIndex`]: the
//! index is sharded by content hash behind per-shard `RwLock`s, a bounded
//! worker pool executes requests with admission control (explicit
//! `Overloaded`/`Timeout` responses, never a panic or an unbounded queue),
//! and newline-delimited JSON frontends serve TCP and stdio clients.
//!
//! Responses expose the internal write order (`seq` / `seen_seq`), making
//! every concurrent run exactly checkable against a single-threaded
//! replay — see the concurrency tests and `DESIGN.md` § Serving layer.
//!
//! ```
//! use ssj_serve::{Request, Response, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     workers: 2,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let h = server.handle();
//! let id = match h.call(Request::Insert { elems: vec![1, 2, 3] }) {
//!     Response::Inserted { id, .. } => id,
//!     other => panic!("unexpected {other:?}"),
//! };
//! match h.call(Request::Query { elems: vec![1, 2, 3] }) {
//!     Response::Matches { ids, .. } => assert_eq!(ids, vec![id]),
//!     other => panic!("unexpected {other:?}"),
//! }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod net;
pub mod service;
pub mod wire;

pub use config::{resolve_workers, ServerConfig};
pub use metrics::StatsSnapshot;
pub use service::{Handle, Request, Response, ServeScratch, Server, ShardedIndex, WriteResult};
pub use ssj_store::SyncMode;
