//! Lock-free request counters and latency histograms.
//!
//! All counters are plain relaxed atomics living *outside* the shard
//! `RwLock`s, so queries (which only hold read locks) can record work
//! without serializing on a writer lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (covers up to ~2^39 µs ≈ 6 days).
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with relaxed atomic counters.
///
/// Bucket `i` counts durations whose microsecond value has `i` significant
/// bits, i.e. the range `[2^(i-1), 2^i)` (bucket 0 is `{0}`). Quantiles
/// read from a [`HistogramSnapshot`] are therefore upper bounds with at
/// most 2× resolution — plenty for p50/p95/p99 reporting.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = (bit_width(us)).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// Number of significant bits in `x` (0 for 0).
fn bit_width(x: u64) -> usize {
    (u64::BITS - x.leading_zeros()) as usize
}

/// Frozen histogram counters, with quantile/mean accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (log₂ microsecond buckets).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_micros: u64,
}

impl HistogramSnapshot {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile in microseconds
    /// (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i: durations with i significant bits
                // are < 2^i µs.
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Per-shard request counters.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Completed insert operations owned by this shard.
    pub inserts: AtomicU64,
    /// Completed remove operations owned by this shard (found or not).
    pub removes: AtomicU64,
    /// Query executions that probed this shard (a fan-out query counts
    /// once on every shard).
    pub queries: AtomicU64,
    /// Candidates this shard's index probed before verification.
    pub candidates_probed: AtomicU64,
    /// Probed candidates the bitmap filter rejected before the exact
    /// merge (DESIGN.md §5i).
    pub bitmap_pruned: AtomicU64,
    /// Candidates that passed verification (reported matches).
    pub verified_hits: AtomicU64,
}

impl ShardCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ShardCountersSnapshot {
        ShardCountersSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            candidates_probed: self.candidates_probed.load(Ordering::Relaxed),
            bitmap_pruned: self.bitmap_pruned.load(Ordering::Relaxed),
            verified_hits: self.verified_hits.load(Ordering::Relaxed),
        }
    }
}

/// Frozen [`ShardCounters`], plus the shard's live-set count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardCountersSnapshot {
    /// See [`ShardCounters::inserts`].
    pub inserts: u64,
    /// See [`ShardCounters::removes`].
    pub removes: u64,
    /// See [`ShardCounters::queries`].
    pub queries: u64,
    /// See [`ShardCounters::candidates_probed`].
    pub candidates_probed: u64,
    /// See [`ShardCounters::bitmap_pruned`].
    pub bitmap_pruned: u64,
    /// See [`ShardCounters::verified_hits`].
    pub verified_hits: u64,
}

/// Server-wide admission and latency metrics (the request queue is global,
/// so queue-wait and service-time histograms live here, not per shard).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests rejected because the queue was full.
    pub overloaded: AtomicU64,
    /// Requests dropped because their deadline expired while queued.
    pub timeouts: AtomicU64,
    /// Time from enqueue to dequeue.
    pub queue_wait: LatencyHistogram,
    /// Time executing the operation (after dequeue).
    pub service_time: LatencyHistogram,
}

/// The full statistics payload returned by the `stats` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-shard live-set counts (index `i` = shard `i`).
    pub live_sets: Vec<u64>,
    /// Per-shard request counters (index `i` = shard `i`).
    pub shards: Vec<ShardCountersSnapshot>,
    /// The write sequence number: total writes admitted so far.
    pub seq: u64,
    /// See [`ServerMetrics::accepted`].
    pub accepted: u64,
    /// See [`ServerMetrics::overloaded`].
    pub overloaded: u64,
    /// See [`ServerMetrics::timeouts`].
    pub timeouts: u64,
    /// See [`ServerMetrics::queue_wait`].
    pub queue_wait: HistogramSnapshot,
    /// See [`ServerMetrics::service_time`].
    pub service_time: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum_micros, 1107);
        assert_eq!(s.buckets[0], 1); // the single 0
        assert_eq!(s.buckets[1], 2); // the two 1s
        assert_eq!(s.buckets[2], 2); // 2 and 3
                                     // p50 falls in bucket 2 (cumulative 5 ≥ ceil(0.5·7)=4): bound 3 µs.
        assert_eq!(s.quantile_micros(0.5), 3);
        // p100 is the largest bucket's upper bound: 1000 µs → bucket 10.
        assert_eq!(s.quantile_micros(1.0), (1 << 10) - 1);
        assert!(s.mean_micros() > 0.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.quantile_micros(0.99), 0);
        assert_eq!(s.mean_micros(), 0.0);
    }

    #[test]
    fn shard_counters_snapshot() {
        let c = ShardCounters::default();
        c.inserts.fetch_add(2, Ordering::Relaxed);
        c.verified_hits.fetch_add(5, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.verified_hits, 5);
        assert_eq!(s.queries, 0);
    }
}
