//! The concurrent service core: a sharded similarity index behind a
//! bounded worker pool.
//!
//! # Sharding and snapshot consistency
//!
//! The state is `shards` independent [`JaccardIndex`]es, each behind its
//! own witnessed `RwLock` ([`ssj_core::lockwitness`], class `shard-index`,
//! keyed by shard number). A set is owned by the shard the index's single
//! [`ssj_core::index::Placement`] value routes it to, so writes (insert,
//! remove)
//! take exactly one write lock; queries take **all** shard read locks and
//! merge the per-shard answers. Every multi-lock acquisition goes through
//! [`ShardedIndex::lock_all_read`] / [`ShardedIndex::lock_owner_write`] —
//! one audited ascending-shard-order implementation, so no deadlock is
//! possible. `cargo xtask locklint` enforces this statically and the
//! debug-build lock witness re-checks it at runtime (DESIGN.md §5f).
//!
//! A global sequence counter makes the interleaving observable and exactly
//! checkable: every write increments `seq` *inside* its shard's write
//! critical section, and every query loads `seq` *after* acquiring all
//! read locks. Because a write's increment happens while it excludes
//! readers from its shard, a query that observed `seq = S` sees exactly
//! the writes with sequence number `< S`: a write with a smaller number
//! finished its critical section before the query locked that shard, and
//! a write with a larger number could not have touched any shard until the
//! query released it. Responses carry these numbers (`seq` on writes,
//! `seen_seq` on queries), which is what lets the concurrency tests replay
//! any N-thread run against a single-threaded oracle and demand equality.
//!
//! # Stable global ids
//!
//! Shard-local stable ids (see [`JaccardIndex`]) are encoded as
//! `global = local * shards + shard_index`, so the owning shard is
//! recoverable from any id (`global % shards`) and ids remain valid across
//! shard-internal rebuilds and removals.
//!
//! # Admission control
//!
//! Requests flow through one bounded crossbeam channel. [`Handle::call`]
//! uses `try_send`: a full queue answers [`Response::Overloaded`]
//! immediately rather than blocking the client. Workers check the
//! per-request deadline at dequeue and answer [`Response::Timeout`]
//! without executing expired work. Shutdown flips a draining flag (new
//! calls answer [`Response::ShuttingDown`]), lets queued work finish,
//! then parks one `Stop` sentinel per worker and joins them.

use crate::config::ServerConfig;
use crate::metrics::{ServerMetrics, ShardCounters, ShardCountersSnapshot, StatsSnapshot};
use crossbeam::channel::{self, TrySendError};
use ssj_core::error::{Result as CoreResult, SsjError};
use ssj_core::index::{ContentHashPlacement, JaccardIndex, Placement, QueryScratch};
use ssj_core::lockwitness::{WitnessReadGuard, WitnessRwLock, WitnessWriteGuard, SHARD_INDEX};
use ssj_core::set::{ElementId, SetId};
use ssj_store::{Recovered, ShardState, Store, StoreConfig, TailStatus, WalOp, WalRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An operation accepted by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Index a set; answers [`Response::Inserted`].
    Insert {
        /// The set's elements (any order, duplicates tolerated).
        elems: Vec<ElementId>,
    },
    /// Remove a set by global id; answers [`Response::Removed`].
    Remove {
        /// A global id previously returned by an insert.
        id: u64,
    },
    /// Find indexed sets within the similarity threshold; answers
    /// [`Response::Matches`].
    Query {
        /// The probe set.
        elems: Vec<ElementId>,
    },
    /// Atomically query then insert (streaming dedup); answers
    /// [`Response::QueryInserted`]. The probe never matches itself.
    QueryInsert {
        /// The set to look up and then index.
        elems: Vec<ElementId>,
    },
    /// Fetch counters; answers [`Response::Stats`].
    Stats,
    /// Compact the durable state — snapshot states plus WAL tail — into
    /// one read-optimized segment in the data directory; answers
    /// [`Response::Compacted`]. Errors on a memory-only server.
    Compact,
    /// Point-read a set by global id from the newest segment; answers
    /// [`Response::SegmentSet`]. Errors on a memory-only server or when
    /// no segment has been compacted yet.
    SegGet {
        /// A global id previously returned by an insert.
        id: u64,
    },
    /// Replica catch-up: ship the WAL suffix from `from_seq` on; answers
    /// [`Response::WalTail`]. Errors on a memory-only server (no WAL).
    Tail {
        /// Resume point: the first sequence number the replica lacks.
        from_seq: u64,
    },
    /// Replica bootstrap: ship a consistent full-state snapshot batch
    /// (one image per shard, all at one watermark); answers
    /// [`Response::Snapshots`]. Works on memory-only servers too — the
    /// images are encoded from the live in-memory state.
    SnapFetch,
}

/// The service's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The set was indexed under `id` as write number `seq`.
    Inserted {
        /// Stable global id of the new set.
        id: u64,
        /// This write's global sequence number.
        seq: u64,
        /// Durable watermark after this write reached its configured sync
        /// point: writes numbered below it are on stable storage. `None`
        /// on a memory-only server.
        durable: Option<u64>,
    },
    /// The removal executed as write number `seq`.
    Removed {
        /// Whether the id named a live set (false: unknown or already
        /// removed — a no-op, not an error).
        found: bool,
        /// This write's global sequence number.
        seq: u64,
        /// Durable watermark (see [`Response::Inserted`]); `None` on a
        /// memory-only server.
        durable: Option<u64>,
    },
    /// Query results against the snapshot of writes `< seen_seq`.
    Matches {
        /// Global ids of matching sets, ascending.
        ids: Vec<u64>,
        /// The query saw exactly the writes numbered below this.
        seen_seq: u64,
        /// Candidates probed across all shards before verification.
        probed: u64,
    },
    /// Combined answer to [`Request::QueryInsert`].
    QueryInserted {
        /// Global ids of sets matching the probe (excluding itself).
        ids: Vec<u64>,
        /// Stable global id of the newly inserted set.
        id: u64,
        /// This write's sequence number; the query half saw writes `< seq`.
        seq: u64,
        /// Candidates probed across all shards before verification.
        probed: u64,
        /// Durable watermark (see [`Response::Inserted`]); `None` on a
        /// memory-only server.
        durable: Option<u64>,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// The durable state was compacted into a segment.
    Compacted {
        /// The snapshot's sequence number: the segment holds exactly the
        /// writes numbered below it.
        seq: u64,
        /// Live sets written into the segment.
        sets: u64,
        /// The segment file's path inside the data directory.
        file: String,
    },
    /// Answer to [`Request::SegGet`]: the set as stored in the newest
    /// segment (`None` when the id is absent — unknown or tombstoned).
    SegmentSet {
        /// The requested global id.
        id: u64,
        /// The set's elements, ascending; `None` if absent.
        elems: Option<Vec<ElementId>>,
        /// Sequence number of the segment answering the read.
        segment_seq: u64,
    },
    /// Answer to [`Request::Tail`]: the WAL suffix from the resume point.
    WalTail {
        /// The resume point echoed back.
        from_seq: u64,
        /// CRC-framed WAL records with sequence numbers `>= from_seq`,
        /// byte-identical to the owner's WAL framing; `None` when the
        /// resume point was compacted away (the replica must re-bootstrap
        /// via [`Request::SnapFetch`]).
        frames: Option<Vec<u8>>,
    },
    /// Answer to [`Request::SnapFetch`]: one snapshot image per shard, all
    /// taken at the same watermark `seq`, each byte-identical to the
    /// `shard-<i>.snap` file the owner would write at that watermark.
    Snapshots {
        /// The batch's consistent watermark: images hold writes `< seq`.
        seq: u64,
        /// Per-shard encoded snapshot images, index = shard number.
        shards: Vec<Vec<u8>>,
    },
    /// The request queue was full; nothing was executed. Retry later.
    Overloaded,
    /// The request's deadline expired while it waited in the queue;
    /// nothing was executed.
    Timeout,
    /// The server is draining; nothing was executed.
    ShuttingDown,
    /// The request was malformed (wire-layer parse or validation failure).
    Error(String),
}

struct Shard {
    /// Class `shard-index` (rank 0) in the canonical lock order, keyed by
    /// shard number: multi-shard sweeps acquire ascending keys.
    index: WitnessRwLock<JaccardIndex>,
    counters: ShardCounters,
}

/// One shard's guard from [`ShardedIndex::lock_owner_write`]: the owning
/// shard is write-locked, every other shard read-locked.
enum ShardGuard<'a> {
    Read(WitnessReadGuard<'a, JaccardIndex>),
    Write(WitnessWriteGuard<'a, JaccardIndex>),
}

impl ShardGuard<'_> {
    fn index(&self) -> &JaccardIndex {
        match self {
            ShardGuard::Read(g) => g,
            ShardGuard::Write(g) => g,
        }
    }

    /// The guarded index, writable only on the write-locked owner.
    fn index_mut(&mut self) -> Option<&mut JaccardIndex> {
        match self {
            ShardGuard::Read(_) => None,
            ShardGuard::Write(g) => Some(g),
        }
    }
}

/// Outcome of a write against a possibly-durable [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteResult<T> {
    /// The write executed. The second field is the durable watermark after
    /// the write reached its configured sync point (`None` on a
    /// memory-only index): writes numbered below it are on stable storage.
    Done(T, Option<u64>),
    /// The persistence layer refused or failed the write; on an append
    /// failure the write was **not** applied and the store is poisoned
    /// (every later write fails fast until restart + recovery).
    StoreFailed(String),
}

/// Reusable buffers for the serve read path (DESIGN.md §5g).
///
/// Each worker thread owns one `ServeScratch` and threads it through
/// [`ShardedIndex::query_scratch`], so a steady-state query performs no
/// heap allocation beyond the response it hands back: canonicalization,
/// signature generation, candidate sweeping, and verification all reuse
/// these buffers (pinned end-to-end by the counting-allocator witness in
/// this crate's `tests/alloc_witness.rs`, and per building block by
/// `ssj-core/tests/alloc_witness.rs`). Construction is allocation-free.
#[derive(Debug, Default)]
pub struct ServeScratch {
    /// Canonicalized query elements.
    set: Vec<ElementId>,
    /// Per-shard index query buffers.
    query: QueryScratch,
    /// One shard's matches awaiting global-id encoding.
    matches: Vec<SetId>,
}

/// The per-shard scheme seed, derived from the configured master seed so
/// runs stay reproducible — and so recovery rebuilds each shard under the
/// exact seed it was created with.
fn shard_scheme_seed(master: u64, shard: usize) -> u64 {
    master.wrapping_add(shard as u64).wrapping_mul(0x9e37_79b9)
}

/// The sharded, concurrently usable index facade.
///
/// Usable directly (every method takes `&self`) or behind the worker pool
/// via [`Server`] / [`Handle`]. With a `data_dir` configured
/// ([`ShardedIndex::open`]), every write is WAL-logged *inside* its shard
/// critical section — sequence assignment happens in the WAL's own
/// critical section, so log order equals global write order — and
/// snapshots compact the log every `snapshot_every` writes.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    /// The single routing policy shared by every path that must agree on
    /// set ownership — `insert_d` and `query_insert_d` both consult this
    /// one value, so build-time and serve-time routing cannot desync.
    placement: ContentHashPlacement,
    seq: AtomicU64,
    store: Option<Store>,
    snapshot_every: u64,
    writes_since_snapshot: AtomicU64,
    snapshotting: AtomicBool,
}

impl ShardedIndex {
    /// Creates `cfg.shards` empty shards (clamped to at least one),
    /// memory-only regardless of `cfg.data_dir`.
    pub fn new(cfg: &ServerConfig) -> CoreResult<Self> {
        let n = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(Shard {
                index: WitnessRwLock::new(
                    &SHARD_INDEX,
                    i as u32,
                    JaccardIndex::new(
                        cfg.gamma,
                        cfg.initial_max_size,
                        shard_scheme_seed(cfg.seed, i),
                    )?,
                ),
                counters: ShardCounters::default(),
            });
        }
        Ok(Self {
            shards,
            placement: ContentHashPlacement::new(n, cfg.seed),
            seq: AtomicU64::new(0),
            store: None,
            snapshot_every: 0,
            writes_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
        })
    }

    /// Creates the index per `cfg`: memory-only when `cfg.data_dir` is
    /// `None`, otherwise opens (or creates) the durable store there and
    /// recovers — newest valid snapshots plus WAL tail replay — to exactly
    /// the persisted write history.
    pub fn open(cfg: &ServerConfig) -> CoreResult<Self> {
        let Some(dir) = &cfg.data_dir else {
            return Self::new(cfg);
        };
        let store_cfg = StoreConfig {
            shards: cfg.shards.max(1),
            seed: cfg.seed,
            gamma: cfg.gamma,
            initial_max_size: cfg.initial_max_size,
            sync: cfg.sync,
        };
        let (store, recovered) = Store::open(dir, store_cfg)
            .map_err(|e| SsjError::Storage(format!("{}: {e}", dir.display())))?;
        Self::from_recovered(cfg, store, recovered)
    }

    fn from_recovered(cfg: &ServerConfig, store: Store, recovered: Recovered) -> CoreResult<Self> {
        if recovered.tail != TailStatus::Clean {
            eprintln!(
                "ssj-serve: WAL tail was {:?}; discarded the invalid suffix \
                 and recovered to the last valid record",
                recovered.tail
            );
        }
        // Snapshot states first…
        let mut indexes = Vec::with_capacity(recovered.shards.len());
        for (i, state) in recovered.shards.iter().enumerate() {
            indexes.push(JaccardIndex::restore(
                cfg.gamma,
                cfg.initial_max_size,
                shard_scheme_seed(cfg.seed, i),
                state.next_id,
                &state.live,
            )?);
        }
        // …then the WAL tail, in log order. Insert replay re-issues
        // shard-local ids deterministically (per-shard log order equals
        // per-shard mutation order); remove replay is idempotent.
        for record in &recovered.wal {
            match &record.op {
                WalOp::Insert { shard, set } => {
                    let _ = indexes[*shard as usize].insert(set.clone());
                }
                WalOp::Remove { shard, local } => {
                    let _ = indexes[*shard as usize].try_remove(*local);
                }
            }
        }
        let shards: Vec<Shard> = indexes
            .into_iter()
            .enumerate()
            .map(|(i, index)| Shard {
                index: WitnessRwLock::new(&SHARD_INDEX, i as u32, index),
                counters: ShardCounters::default(),
            })
            .collect();
        let placement = ContentHashPlacement::new(shards.len(), cfg.seed);
        Ok(Self {
            shards,
            placement,
            seq: AtomicU64::new(recovered.seq),
            store: Some(store),
            snapshot_every: cfg.snapshot_every,
            writes_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
        })
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total writes admitted so far.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// The routing policy both write paths share. Exposed so external
    /// coordinators (and the placement regression test) can predict which
    /// shard a set will land on without re-deriving the policy.
    pub fn placement(&self) -> &ContentHashPlacement {
        &self.placement
    }

    /// Builds a **memory-only** index pre-seeded from shipped snapshot
    /// states at sequence number `seq` — the replica-bootstrap entry point.
    /// `states` must hold exactly `cfg.shards.max(1)` entries (one per
    /// shard, as produced by [`ShardedIndex::dump`] or snapshot shipping).
    pub fn restore_from_states(
        cfg: &ServerConfig,
        states: &[ShardState],
        seq: u64,
    ) -> CoreResult<Self> {
        let n = cfg.shards.max(1);
        if states.len() != n {
            return Err(SsjError::InvalidParams(format!(
                "replica bootstrap needs {n} shard states, got {}",
                states.len()
            )));
        }
        let shards: Vec<Shard> = states
            .iter()
            .enumerate()
            .map(|(i, state)| {
                Ok(Shard {
                    index: WitnessRwLock::new(
                        &SHARD_INDEX,
                        i as u32,
                        JaccardIndex::restore(
                            cfg.gamma,
                            cfg.initial_max_size,
                            shard_scheme_seed(cfg.seed, i),
                            state.next_id,
                            &state.live,
                        )?,
                    ),
                    counters: ShardCounters::default(),
                })
            })
            .collect::<CoreResult<_>>()?;
        let placement = ContentHashPlacement::new(shards.len(), cfg.seed);
        Ok(Self {
            shards,
            placement,
            seq: AtomicU64::new(seq),
            store: None,
            snapshot_every: 0,
            writes_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
        })
    }

    /// Applies one replicated write in log order — the replica-tail entry
    /// point. The record's sequence number must be exactly the next write
    /// (`self.seq()`); a gap means the tail stream skipped a record and the
    /// replica must re-bootstrap rather than silently diverge.
    pub fn apply_replicated(&self, record: &WalRecord) -> CoreResult<()> {
        let expect = self.seq.load(Ordering::SeqCst);
        if record.seq != expect {
            return Err(SsjError::InvalidParams(format!(
                "replicated record seq {} but replica expects {expect}",
                record.seq
            )));
        }
        let shard_no = match &record.op {
            WalOp::Insert { shard, .. } | WalOp::Remove { shard, .. } => *shard as usize,
        };
        let Some(shard) = self.shards.get(shard_no) else {
            return Err(SsjError::InvalidParams(format!(
                "replicated record names shard {shard_no} of {}",
                self.shards.len()
            )));
        };
        let mut index = shard.index.write();
        match &record.op {
            WalOp::Insert { set, .. } => {
                let _ = index.insert(set.clone());
                shard.counters.inserts.fetch_add(1, Ordering::Relaxed);
            }
            WalOp::Remove { local, .. } => {
                let _ = index.try_remove(*local);
                shard.counters.removes.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Advance seq inside the shard write critical section, mirroring
        // the owner's ordering: a replica query that sees seq = S has seen
        // exactly the replicated writes numbered < S.
        self.seq.store(record.seq + 1, Ordering::SeqCst);
        drop(index);
        Ok(())
    }

    fn canonical(elems: Vec<ElementId>) -> Vec<ElementId> {
        let mut sorted = elems;
        sorted.sort_unstable();
        sorted.dedup();
        sorted
    }

    fn encode_id(&self, local: u32, shard: usize) -> u64 {
        u64::from(local) * self.shards.len() as u64 + shard as u64
    }

    /// Splits a global id into `(shard, local)`; `None` if the local part
    /// exceeds the id domain (such an id was never issued).
    fn decode_id(&self, global: u64) -> Option<(usize, u32)> {
        let n = self.shards.len() as u64;
        let shard = (global % n) as usize;
        let local = u32::try_from(global / n).ok()?;
        Some((shard, local))
    }

    /// Read-locks every shard in ascending shard order and returns the
    /// guards (position `i` guards shard `i`). This is the single audited
    /// implementation of whole-index read acquisition; every
    /// snapshot-consistent scan (query, stats, snapshot, dump) goes
    /// through it rather than hand-rolling a guard sweep.
    fn lock_all_read(&self) -> Vec<WitnessReadGuard<'_, JaccardIndex>> {
        // locklint: allow(multi-shard-order, fn): this is the canonical ascending-order acquisition every multi-shard reader shares — iteration order is the shard vector's index order, and the debug-build lock witness re-checks (rank, key) monotonicity on every acquire.
        self.shards.iter().map(|s| s.index.read()).collect()
    }

    /// Write-locks shard `owner` and read-locks every other shard, in one
    /// ascending-order sweep (position `i` guards shard `i`). The audited
    /// counterpart of [`ShardedIndex::lock_all_read`] for the
    /// query-then-insert path, which must observe a consistent snapshot
    /// *and* mutate the owning shard under the same acquisition.
    fn lock_owner_write(&self, owner: usize) -> Vec<ShardGuard<'_>> {
        // locklint: allow(multi-shard-order, fn): canonical ascending-order acquisition for the query-then-insert path — write lock at the owner, read locks elsewhere, one ordered sweep re-checked at runtime by the lock witness.
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == owner {
                    ShardGuard::Write(s.index.write())
                } else {
                    ShardGuard::Read(s.index.read())
                }
            })
            .collect()
    }

    /// Assigns this write's sequence number, WAL-logging it first when a
    /// store is attached. Called *inside* the owning shard's write critical
    /// section; seq assignment happens inside the WAL's own critical
    /// section, so WAL file order equals global sequence order and any WAL
    /// prefix is a prefix of the logical write history.
    fn log_write(&self, op: impl FnOnce() -> WalOp) -> Result<u64, String> {
        match &self.store {
            Some(store) => store
                .append(op(), || self.seq.fetch_add(1, Ordering::SeqCst))
                .map_err(|e| format!("wal append failed: {e}")),
            None => Ok(self.seq.fetch_add(1, Ordering::SeqCst)),
        }
    }

    /// Drives write `seq` to its configured sync point and returns the
    /// durable watermark (`None` without a store). Called *after* the shard
    /// lock is released so fsync never blocks other shards' writers.
    fn settle_write(&self, seq: u64) -> Result<Option<u64>, String> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let durable = store
            .ensure_durable(seq)
            .map_err(|e| format!("wal sync failed: {e}"))?;
        self.maybe_snapshot();
        Ok(Some(durable))
    }

    /// Indexes a set; returns its stable global id and write number plus
    /// the durable watermark.
    pub fn insert_d(&self, elems: Vec<ElementId>) -> WriteResult<(u64, u64)> {
        // locklint: allow(blocking-under-lock, fn): the WAL append (log_write) deliberately runs inside the shard write critical section so WAL file order equals global seq order; the fsync (settle_write) runs only after the guard is dropped.
        let set = Self::canonical(elems);
        let owner = self.placement.bucket_of(&set);
        let shard = &self.shards[owner];
        let mut index = shard.index.write();
        let seq = match self.log_write(|| WalOp::Insert {
            shard: owner as u32,
            set: set.clone(),
        }) {
            Ok(seq) => seq,
            Err(msg) => return WriteResult::StoreFailed(msg),
        };
        let local = index.insert(set);
        drop(index);
        shard.counters.inserts.fetch_add(1, Ordering::Relaxed);
        match self.settle_write(seq) {
            Ok(durable) => WriteResult::Done((self.encode_id(local, owner), seq), durable),
            // The write is applied and logged but not at its sync point;
            // the store is poisoned, so the client must not treat it as
            // durable — surface the failure instead of a watermark.
            Err(msg) => WriteResult::StoreFailed(msg),
        }
    }

    /// Indexes a set; returns its stable global id and write number.
    pub fn insert(&self, elems: Vec<ElementId>) -> (u64, u64) {
        match self.insert_d(elems) {
            WriteResult::Done(out, _) => out,
            // Only reachable with a store attached; direct users of the
            // tuple API are memory-only (tests, benches).
            WriteResult::StoreFailed(_) => (u64::MAX, u64::MAX),
        }
    }

    /// Removes a set by global id; returns whether it was live and the
    /// write number, plus the durable watermark.
    pub fn remove_d(&self, global: u64) -> WriteResult<(bool, u64)> {
        // locklint: allow(blocking-under-lock, fn): the WAL append (log_write) deliberately runs inside the shard write critical section so WAL file order equals global seq order; the fsync (settle_write) runs only after the guard is dropped.
        let Some((owner, local)) = self.decode_id(global) else {
            // Out-of-domain id: provably never issued, so this is a no-op
            // that needs no lock, changes no state, and is not logged
            // (keeping WAL sequence numbers contiguous).
            return WriteResult::Done((false, self.seq.load(Ordering::SeqCst)), None);
        };
        let shard = &self.shards[owner];
        let mut index = shard.index.write();
        let seq = match self.log_write(|| WalOp::Remove {
            shard: owner as u32,
            local,
        }) {
            Ok(seq) => seq,
            Err(msg) => return WriteResult::StoreFailed(msg),
        };
        let found = index.try_remove(local);
        drop(index);
        shard.counters.removes.fetch_add(1, Ordering::Relaxed);
        match self.settle_write(seq) {
            Ok(durable) => WriteResult::Done((found, seq), durable),
            Err(msg) => WriteResult::StoreFailed(msg),
        }
    }

    /// Removes a set by global id; returns whether it was live, and the
    /// write number.
    pub fn remove(&self, global: u64) -> (bool, u64) {
        match self.remove_d(global) {
            WriteResult::Done(out, _) => out,
            WriteResult::StoreFailed(_) => (false, u64::MAX),
        }
    }

    /// Queries all shards against one consistent snapshot; returns the
    /// matching global ids (ascending), the snapshot's sequence number,
    /// and the candidates probed.
    pub fn query(&self, elems: Vec<ElementId>) -> (Vec<u64>, u64, u64) {
        // hotlint: allow(hot-scratch, fn): convenience wrapper for tests and one-shot callers — the worker pool threads a per-worker ServeScratch through query_scratch.
        let mut ids = Vec::new();
        let (seen_seq, probed) = self.query_scratch(&elems, &mut ServeScratch::default(), &mut ids);
        (ids, seen_seq, probed)
    }

    /// [`Self::query`] with caller-provided buffers: clears `out`, fills it
    /// with the matching global ids (ascending), and returns
    /// `(seen_seq, probed)`. Allocation-free once the buffers have warmed
    /// up — the worker pool's steady-state read path.
    pub fn query_scratch(
        &self,
        elems: &[ElementId],
        scratch: &mut ServeScratch,
        out: &mut Vec<u64>,
    ) -> (u64, u64) {
        // `scratch.set` is taken out so `scratch` can be handed down the
        // recursion; restored below (no allocation, keeps the buffer warm).
        let mut set = std::mem::take(&mut scratch.set);
        set.clear();
        set.extend_from_slice(elems);
        set.sort_unstable();
        set.dedup();
        out.clear();
        let mut probed = 0u64;
        let seen_seq = self.query_rec(0, &set, scratch, out, &mut probed);
        out.sort_unstable();
        scratch.set = set;
        (seen_seq, probed)
    }

    /// Recursive whole-index read acquisition: frame `i` read-locks shard
    /// `i`, recurses to `i + 1`, and queries shard `i` on unwind while its
    /// guard is still held. The deepest frame loads `seq` with **all**
    /// guards held, and every guard is acquired before that load and
    /// released only after its shard's query — so each shard is queried in
    /// exactly the state it had at the `seq` load, giving the same snapshot
    /// consistency as [`ShardedIndex::lock_all_read`] without materializing
    /// a guard vector (the read path must not allocate).
    fn query_rec(
        &self,
        i: usize,
        set: &[ElementId],
        scratch: &mut ServeScratch,
        out: &mut Vec<u64>,
        probed: &mut u64,
    ) -> u64 {
        // locklint: allow(multi-shard-order, fn): ascending recursive acquisition — frame i read-locks shard i before recursing to i+1, so locks are taken in index order like lock_all_read's sweep; the debug-build lock witness re-checks (rank, key) monotonicity on every acquire.
        let Some(shard) = self.shards.get(i) else {
            return self.seq.load(Ordering::SeqCst);
        };
        let guard = shard.index.read();
        let seen_seq = self.query_rec(i + 1, set, scratch, out, probed);
        let mut matches = std::mem::take(&mut scratch.matches);
        let shard_probed = guard.query_counted_scratch(set, &mut scratch.query, &mut matches);
        *probed += shard_probed as u64;
        shard.counters.queries.fetch_add(1, Ordering::Relaxed);
        shard
            .counters
            .candidates_probed
            .fetch_add(shard_probed as u64, Ordering::Relaxed);
        shard
            .counters
            .bitmap_pruned
            .fetch_add(scratch.query.last_bitmap_pruned() as u64, Ordering::Relaxed);
        shard
            .counters
            .verified_hits
            .fetch_add(matches.len() as u64, Ordering::Relaxed);
        out.extend(matches.iter().map(|&local| self.encode_id(local, i)));
        scratch.matches = matches;
        seen_seq
    }

    /// Atomically queries then inserts: the returned matches are exactly
    /// the writes numbered below the returned `seq`, and the insert *is*
    /// write `seq`. Returns `(matching ids, new id, seq, probed)` plus the
    /// durable watermark.
    pub fn query_insert_d(&self, elems: Vec<ElementId>) -> WriteResult<(Vec<u64>, u64, u64, u64)> {
        // locklint: allow(blocking-under-lock, fn): the WAL append (log_write) deliberately runs inside the owner shard's write critical section so WAL file order equals global seq order; the fsync (settle_write) runs only after the guards are dropped.
        let set = Self::canonical(elems);
        let owner = self.placement.bucket_of(&set);
        let mut guards = self.lock_owner_write(owner);
        let seq = match self.log_write(|| WalOp::Insert {
            shard: owner as u32,
            set: set.clone(),
        }) {
            Ok(seq) => seq,
            Err(msg) => return WriteResult::StoreFailed(msg),
        };
        let mut ids = Vec::new();
        let mut probed = 0u64;
        let mut qscratch = QueryScratch::default();
        let mut matches: Vec<SetId> = Vec::new();
        for (i, (shard, guard)) in self.shards.iter().zip(&guards).enumerate() {
            let shard_probed =
                guard
                    .index()
                    .query_counted_scratch(&set, &mut qscratch, &mut matches);
            probed += shard_probed as u64;
            shard.counters.queries.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .candidates_probed
                .fetch_add(shard_probed as u64, Ordering::Relaxed);
            shard
                .counters
                .bitmap_pruned
                .fetch_add(qscratch.last_bitmap_pruned() as u64, Ordering::Relaxed);
            shard
                .counters
                .verified_hits
                .fetch_add(matches.len() as u64, Ordering::Relaxed);
            ids.extend(matches.iter().map(|&local| self.encode_id(local, i)));
        }
        let id = match guards[owner].index_mut() {
            Some(g) => {
                let local = g.insert(set);
                self.encode_id(local, owner)
            }
            // Unreachable: lock_owner_write always write-locks `owner`;
            // keep a harmless fallback rather than panic in the service
            // path.
            None => u64::MAX,
        };
        drop(guards);
        self.shards[owner]
            .counters
            .inserts
            .fetch_add(1, Ordering::Relaxed);
        ids.sort_unstable();
        match self.settle_write(seq) {
            Ok(durable) => WriteResult::Done((ids, id, seq, probed), durable),
            Err(msg) => WriteResult::StoreFailed(msg),
        }
    }

    /// Atomically queries then inserts. Returns
    /// `(matching ids, new id, seq, probed)`.
    pub fn query_insert(&self, elems: Vec<ElementId>) -> (Vec<u64>, u64, u64, u64) {
        match self.query_insert_d(elems) {
            WriteResult::Done(out, _) => out,
            WriteResult::StoreFailed(_) => (Vec::new(), u64::MAX, u64::MAX, 0),
        }
    }

    /// Per-shard live-set counts, counter snapshots, and the current
    /// sequence number.
    pub fn shard_stats(&self) -> (Vec<u64>, Vec<ShardCountersSnapshot>, u64) {
        // One ordered acquisition instead of a transient read lock per
        // shard: the live counts come from a single consistent snapshot,
        // and the guards are dropped before any other work.
        let guards = self.lock_all_read();
        let live: Vec<u64> = guards.iter().map(|g| g.len() as u64).collect();
        drop(guards);
        let counters = self.shards.iter().map(|s| s.counters.snapshot()).collect();
        (live, counters, self.seq())
    }

    /// Bumps the writes-since-snapshot counter and, when the configured
    /// cadence is reached and no snapshot is already running, takes one.
    /// Snapshot failures are reported to stderr but never fail the write
    /// that triggered them (its durability came from the WAL).
    fn maybe_snapshot(&self) {
        if self.snapshot_every == 0 {
            return;
        }
        let writes = self.writes_since_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
        if writes < self.snapshot_every {
            return;
        }
        if self
            .snapshotting
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        self.writes_since_snapshot.store(0, Ordering::Relaxed);
        if let Err(e) = self.snapshot_now() {
            eprintln!("ssj-serve: background snapshot failed: {e}");
        }
        self.snapshotting.store(false, Ordering::SeqCst);
    }

    /// Snapshots every shard and truncates the WAL. Takes all shard read
    /// locks (ascending order), which quiesces writers — a write appends to
    /// the WAL inside its shard's *write* critical section, so no record
    /// the snapshot misses can predate the snapshot's watermark.
    ///
    /// No-op `Ok` without a store.
    pub fn snapshot_now(&self) -> std::io::Result<()> {
        // locklint: allow(blocking-under-lock, fn): snapshot + WAL truncation deliberately run under all shard read locks — holding them quiesces writers, so no record can slip between the snapshot images and the truncation and be lost from both files.
        let Some(store) = &self.store else {
            return Ok(());
        };
        let guards = self.lock_all_read();
        let seq = self.seq.load(Ordering::SeqCst);
        let states: Vec<ShardState> = guards
            .iter()
            .map(|g| {
                let (next_id, live) = g.dump_live();
                ShardState { next_id, live }
            })
            .collect();
        // Guards stay held across snapshot + WAL truncation: a write
        // sneaking between the two would be lost from both files.
        let result = store.snapshot(seq, &states);
        drop(guards);
        result
    }

    /// Forces the WAL to stable storage; returns the durable watermark
    /// (`None` without a store). Part of graceful shutdown.
    pub fn flush_store(&self) -> std::io::Result<Option<u64>> {
        match &self.store {
            Some(store) => store.flush().map(Some),
            None => Ok(None),
        }
    }

    /// The full logical state — per-shard snapshot states plus the global
    /// sequence number — under all shard read locks. Test/crashtest
    /// instrumentation for differential comparison against an oracle.
    pub fn dump(&self) -> (Vec<ShardState>, u64) {
        let guards = self.lock_all_read();
        let seq = self.seq.load(Ordering::SeqCst);
        let states = guards
            .iter()
            .map(|g| {
                let (next_id, live) = g.dump_live();
                ShardState { next_id, live }
            })
            .collect();
        drop(guards);
        (states, seq)
    }
}

struct Job {
    req: Request,
    enqueued: Instant,
    deadline: Duration,
    reply: std::sync::mpsc::SyncSender<Response>,
}

enum Msg {
    Job(Job),
    Stop,
}

struct Inner {
    index: ShardedIndex,
    metrics: ServerMetrics,
    cfg: ServerConfig,
    draining: AtomicBool,
}

impl Inner {
    fn execute(&self, req: Request, scratch: &mut ServeScratch) -> Response {
        // Admission validation: reject sets beyond the configured size
        // bound with a clean wire error. Without this (and the index-layer
        // guards underneath), an oversized set could panic a worker — the
        // connection thread would see a dead reply channel and every later
        // client request on that worker would go unanswered.
        let oversized = match &req {
            Request::Insert { elems }
            | Request::Query { elems }
            | Request::QueryInsert { elems } => elems.len() > self.cfg.max_set_len,
            Request::Remove { .. }
            | Request::Stats
            | Request::Compact
            | Request::SegGet { .. }
            | Request::Tail { .. }
            | Request::SnapFetch => false,
        };
        if oversized {
            return Response::Error(format!(
                "set exceeds the server's max_set_len = {}",
                self.cfg.max_set_len
            ));
        }
        match req {
            Request::Insert { elems } => match self.index.insert_d(elems) {
                WriteResult::Done((id, seq), durable) => Response::Inserted { id, seq, durable },
                WriteResult::StoreFailed(msg) => Response::Error(msg),
            },
            Request::Remove { id } => match self.index.remove_d(id) {
                WriteResult::Done((found, seq), durable) => Response::Removed {
                    found,
                    seq,
                    durable,
                },
                WriteResult::StoreFailed(msg) => Response::Error(msg),
            },
            Request::Query { elems } => {
                // The response owns its ids, so one Vec per reply is
                // inherent to the protocol; everything else the query
                // touches reuses the worker's scratch.
                let mut ids = Vec::new();
                let (seen_seq, probed) = self.index.query_scratch(&elems, scratch, &mut ids);
                Response::Matches {
                    ids,
                    seen_seq,
                    probed,
                }
            }
            Request::QueryInsert { elems } => match self.index.query_insert_d(elems) {
                WriteResult::Done((ids, id, seq, probed), durable) => Response::QueryInserted {
                    ids,
                    id,
                    seq,
                    probed,
                    durable,
                },
                WriteResult::StoreFailed(msg) => Response::Error(msg),
            },
            Request::Stats => Response::Stats(self.stats()),
            Request::Compact => self.compact(),
            Request::SegGet { id } => self.seg_get(id),
            Request::Tail { from_seq } => self.tail(from_seq),
            Request::SnapFetch => self.snap_fetch(),
        }
    }

    /// Ships the WAL suffix from `from_seq` (replica catch-up).
    fn tail(&self, from_seq: u64) -> Response {
        let Some(store) = self.index.store() else {
            return Response::Error("tail requires a durable server (--data-dir)".into());
        };
        match store.tail_wal(from_seq) {
            Ok(ssj_store::WalTail::Frames(frames)) => Response::WalTail {
                from_seq,
                frames: Some(frames),
            },
            Ok(ssj_store::WalTail::Truncated) => Response::WalTail {
                from_seq,
                frames: None,
            },
            Err(e) => Response::Error(format!("tail failed: {e}")),
        }
    }

    /// Ships a consistent full-state snapshot batch (replica bootstrap).
    /// The states come from [`ShardedIndex::dump`], so every image shares
    /// one watermark regardless of concurrent writes.
    fn snap_fetch(&self) -> Response {
        let (states, seq) = self.index.dump();
        let n = states.len();
        let mut shards = Vec::with_capacity(n);
        for (i, state) in states.iter().enumerate() {
            match ssj_store::encode_shard_snapshot(i, n, seq, state) {
                Ok(bytes) => shards.push(bytes),
                Err(e) => return Response::Error(format!("snap_fetch failed: {e}")),
            }
        }
        Response::Snapshots { seq, shards }
    }

    /// Compacts the full logical state into one segment in the data
    /// directory, named for the sequence number it captures. The state is
    /// taken via [`ShardedIndex::dump`], which releases every shard lock
    /// before the segment write starts — compaction I/O never blocks
    /// writers.
    fn compact(&self) -> Response {
        let Some(store) = self.index.store() else {
            return Response::Error("compact requires a durable server (--data-dir)".into());
        };
        let (states, seq) = self.index.dump();
        let path = store.dir().join(ssj_store::segment_file_name(seq));
        match ssj_extern::segment_from_states(&states, &path) {
            Ok(info) => Response::Compacted {
                seq,
                sets: info.total_sets,
                file: path.display().to_string(),
            },
            Err(e) => Response::Error(format!("compact failed: {e}")),
        }
    }

    /// Point-reads a global id from the newest segment on disk.
    fn seg_get(&self, id: u64) -> Response {
        let Some(store) = self.index.store() else {
            return Response::Error("seg_get requires a durable server (--data-dir)".into());
        };
        let segments = match ssj_store::list_segment_files(store.dir()) {
            Ok(s) => s,
            Err(e) => return Response::Error(format!("seg_get failed: {e}")),
        };
        let Some((segment_seq, path)) = segments.last() else {
            return Response::Error("no segment yet: run compact first".into());
        };
        let result = ssj_extern::Segment::open_path(path).and_then(|mut seg| {
            let mut cache = ssj_extern::BlockCache::new(1 << 20);
            let mut elems = Vec::new();
            let found = seg.lookup(id, &mut cache, &mut elems)?;
            Ok(found.then_some(elems))
        });
        match result {
            Ok(elems) => Response::SegmentSet {
                id,
                elems,
                segment_seq: *segment_seq,
            },
            Err(e) => Response::Error(format!("seg_get failed: {e}")),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        let (live_sets, shards, seq) = self.index.shard_stats();
        StatsSnapshot {
            live_sets,
            shards,
            seq,
            accepted: self.metrics.accepted.load(Ordering::Relaxed),
            overloaded: self.metrics.overloaded.load(Ordering::Relaxed),
            timeouts: self.metrics.timeouts.load(Ordering::Relaxed),
            queue_wait: self.metrics.queue_wait.snapshot(),
            service_time: self.metrics.service_time.snapshot(),
        }
    }
}

fn worker_loop(inner: Arc<Inner>, rx: channel::Receiver<Msg>) {
    // One scratch per worker: steady-state queries reuse these buffers
    // instead of allocating per request (DESIGN.md §5g).
    let mut scratch = ServeScratch::default();
    while let Ok(msg) = rx.recv() {
        let job = match msg {
            Msg::Stop => break,
            Msg::Job(job) => job,
        };
        let waited = job.enqueued.elapsed();
        inner.metrics.queue_wait.record(waited);
        if waited > job.deadline {
            inner.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::Timeout);
            continue;
        }
        if !inner.cfg.worker_delay.is_zero() {
            // Fault-injection pause (tests); see ServerConfig::worker_delay.
            std::thread::sleep(inner.cfg.worker_delay);
        }
        let start = Instant::now();
        let resp = inner.execute(job.req, &mut scratch);
        inner.metrics.service_time.record(start.elapsed());
        // A requester that gave up is not an error; drop the response.
        let _ = job.reply.send(resp);
    }
}

/// A running service instance: the sharded index plus its worker pool.
///
/// Obtain [`Handle`]s with [`Server::handle`] and submit requests from any
/// number of threads; call [`Server::shutdown`] (or drop the server) for a
/// graceful drain.
pub struct Server {
    inner: Arc<Inner>,
    tx: channel::Sender<Msg>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the index — recovering from `cfg.data_dir` when one is
    /// configured — and spawns the worker pool.
    pub fn start(cfg: ServerConfig) -> CoreResult<Self> {
        let index = ShardedIndex::open(&cfg)?;
        let workers = cfg.effective_workers().max(1);
        let (tx, rx) = channel::bounded::<Msg>(cfg.queue_capacity.max(1));
        let inner = Arc::new(Inner {
            index,
            metrics: ServerMetrics::default(),
            cfg,
            draining: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("ssj-serve-worker-{i}"))
                    .spawn(move || worker_loop(inner, rx))
            })
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(|e| {
                ssj_core::error::SsjError::InvalidParams(format!(
                    "failed to spawn worker threads: {e}"
                ))
            })?;
        Ok(Self {
            inner,
            tx,
            workers: handles,
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> Handle {
        Handle {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
        }
    }

    /// Current counters (without going through the request queue).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Direct access to the sharded index (snapshot/flush control and
    /// test instrumentation).
    pub fn index(&self) -> &ShardedIndex {
        &self.inner.index
    }

    /// Graceful drain: stop admitting, finish queued work, join workers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        // One Stop sentinel per worker, queued *behind* all admitted work
        // (FIFO), so every in-flight request is answered before exit.
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Msg::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // All workers are joined: no write is in flight, so this flush
        // covers every acked write. Failures are reported, not swallowed
        // silently — but drain never panics.
        if let Err(e) = self.inner.index.flush_store() {
            eprintln!("ssj-serve: WAL flush on shutdown failed: {e}");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// A cheap, cloneable client handle to a [`Server`].
#[derive(Clone)]
pub struct Handle {
    inner: Arc<Inner>,
    tx: channel::Sender<Msg>,
}

impl Handle {
    /// Submits a request with the server's default deadline and waits for
    /// the response. Never blocks on a full queue and never panics: queue
    /// pressure, expiry, and shutdown surface as the corresponding
    /// [`Response`] variants.
    pub fn call(&self, req: Request) -> Response {
        self.call_with_deadline(req, None)
    }

    /// [`Handle::call`] with an explicit queue deadline.
    pub fn call_with_deadline(&self, req: Request, deadline: Option<Duration>) -> Response {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Response::ShuttingDown;
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let job = Job {
            req,
            enqueued: Instant::now(),
            deadline: deadline.unwrap_or(self.inner.cfg.default_deadline),
            reply: reply_tx,
        };
        // Count admission optimistically so a stats request never observes
        // itself missing; rolled back on rejection.
        self.inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(Msg::Job(job)) {
            // A worker always answers; an error means the pool is gone
            // (drain raced the admission check above).
            Ok(()) => reply_rx.recv().unwrap_or(Response::ShuttingDown),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.accepted.fetch_sub(1, Ordering::Relaxed);
                self.inner
                    .metrics
                    .overloaded
                    .fetch_add(1, Ordering::Relaxed);
                Response::Overloaded
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.accepted.fetch_sub(1, Ordering::Relaxed);
                Response::ShuttingDown
            }
        }
    }

    /// Whether the server has begun draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Current counters (without going through the request queue).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> ServerConfig {
        ServerConfig {
            shards,
            workers: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn sharded_index_basic_operations() {
        let idx = ShardedIndex::new(&cfg(4)).expect("valid config");
        let (a, seq_a) = idx.insert(vec![1, 2, 3, 4, 5]);
        let (_b, seq_b) = idx.insert(vec![100, 200, 300]);
        assert_ne!(seq_a, seq_b);
        let (ids, seen, probed) = idx.query(vec![1, 2, 3, 4, 5]);
        assert_eq!(ids, vec![a]);
        assert_eq!(seen, 2);
        assert!(probed >= 1);
        let (found, _) = idx.remove(a);
        assert!(found);
        let (found_again, _) = idx.remove(a);
        assert!(!found_again);
        let (ids, _, _) = idx.query(vec![1, 2, 3, 4, 5]);
        assert!(ids.is_empty());
    }

    #[test]
    fn global_ids_round_trip_through_shards() {
        let idx = ShardedIndex::new(&cfg(3)).expect("valid config");
        let mut ids = Vec::new();
        for i in 0..50u32 {
            let base = i * 100;
            let (id, _) = idx.insert((base..base + 10).collect());
            ids.push(id);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "global ids must be unique");
        for (i, &id) in ids.iter().enumerate() {
            let _ = i;
            let (found, _) = idx.remove(id);
            assert!(found, "id {id} must decode back to its set");
        }
    }

    #[test]
    fn query_insert_excludes_self_and_finds_duplicates() {
        let idx = ShardedIndex::new(&cfg(4)).expect("valid config");
        let (ids, first, seq0, _) = idx.query_insert(vec![1, 2, 3, 4, 5]);
        assert!(ids.is_empty());
        assert_eq!(seq0, 0);
        let (ids, second, seq1, _) = idx.query_insert(vec![1, 2, 3, 4, 5]);
        assert_eq!(ids, vec![first]);
        assert_ne!(second, first);
        assert_eq!(seq1, 1);
    }

    #[test]
    fn insert_and_query_insert_share_one_placement() {
        // Regression: the owner shard used to be recomputed from loose
        // (shards, seed) pairs at both write call sites; they now consult
        // the one stored Placement. Pin that: the shard recovered from the
        // returned global id must equal the policy's own answer, for both
        // write paths.
        let idx = ShardedIndex::new(&cfg(4)).expect("valid config");
        use ssj_core::index::Placement as _;
        for i in 0..64u32 {
            let set: Vec<u32> = (i * 10..i * 10 + 1 + i % 5).collect();
            let expect = idx.placement().bucket_of(&set);
            let (id_a, _) = idx.insert(set.clone());
            assert_eq!(id_a as usize % 4, expect, "insert_d owner for {set:?}");
            let shifted: Vec<u32> = set.iter().map(|e| e + 1_000_000).collect();
            let expect_b = idx.placement().bucket_of(&shifted);
            let (_, id_b, _, _) = idx.query_insert(shifted.clone());
            assert_eq!(
                id_b as usize % 4,
                expect_b,
                "query_insert_d owner for {shifted:?}"
            );
        }
    }

    #[test]
    fn replica_restore_and_apply_mirror_the_owner() {
        let owner = ShardedIndex::new(&cfg(3)).expect("valid config");
        let (id_a, _) = owner.insert(vec![1, 2, 3]);
        let (_, _) = owner.insert(vec![50, 60]);
        // Bootstrap a replica from the owner's dumped states…
        let (states, seq) = owner.dump();
        let replica =
            ShardedIndex::restore_from_states(&cfg(3), &states, seq).expect("states are valid");
        assert_eq!(replica.seq(), 2);
        let (ids, seen, _) = replica.query(vec![1, 2, 3]);
        assert_eq!(ids, vec![id_a]);
        assert_eq!(seen, 2);
        // …then tail two more writes in log order.
        use ssj_core::index::Placement as _;
        let set = vec![7u32, 8, 9];
        let shard = owner.placement().bucket_of(&set) as u32;
        let (id_c, seq_c) = owner.insert(set.clone());
        replica
            .apply_replicated(&WalRecord {
                seq: seq_c,
                op: WalOp::Insert { shard, set },
            })
            .expect("in-order apply");
        let (ids, seen, _) = replica.query(vec![7, 8, 9]);
        assert_eq!(ids, vec![id_c]);
        assert_eq!(seen, 3);
        // A gap is rejected: the replica must re-bootstrap, not diverge.
        let err = replica.apply_replicated(&WalRecord {
            seq: 9,
            op: WalOp::Remove { shard: 0, local: 0 },
        });
        assert!(err.is_err());
    }

    #[test]
    fn out_of_domain_remove_is_a_no_op() {
        let idx = ShardedIndex::new(&cfg(2)).expect("valid config");
        let (found, _) = idx.remove(u64::MAX - 1);
        assert!(!found);
        assert_eq!(idx.seq(), 0, "no write number consumed");
    }

    #[test]
    fn server_round_trip_and_stats() {
        let server = Server::start(cfg(2)).expect("valid config");
        let h = server.handle();
        let resp = h.call(Request::Insert {
            elems: vec![1, 2, 3],
        });
        let id = match resp {
            Response::Inserted { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        match h.call(Request::Query {
            elems: vec![1, 2, 3],
        }) {
            Response::Matches { ids, .. } => assert_eq!(ids, vec![id]),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.live_sets.iter().sum::<u64>(), 1);
                assert_eq!(s.accepted, 3);
                assert_eq!(s.overloaded, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn oversized_sets_answer_error_not_panic() {
        let server = Server::start(ServerConfig {
            max_set_len: 8,
            ..cfg(2)
        })
        .expect("valid config");
        let h = server.handle();
        let big: Vec<u32> = (0..20).collect();
        for req in [
            Request::Insert { elems: big.clone() },
            Request::Query { elems: big.clone() },
            Request::QueryInsert { elems: big },
        ] {
            match h.call(req) {
                Response::Error(msg) => assert!(msg.contains("max_set_len"), "{msg}"),
                other => panic!("expected Error, got {other:?}"),
            }
        }
        // The server survives: in-range requests still work.
        match h.call(Request::Insert {
            elems: vec![1, 2, 3],
        }) {
            Response::Inserted { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn compact_and_seg_get_round_trip() {
        let dir = std::env::temp_dir().join(format!("ssj_serve_compact_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            ..cfg(2)
        })
        .expect("valid config");
        let h = server.handle();
        let insert = |elems: Vec<u32>| match h.call(Request::Insert { elems }) {
            Response::Inserted { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        let kept = insert(vec![3, 1, 2]);
        let removed = insert(vec![10, 20]);
        match h.call(Request::Remove { id: removed }) {
            Response::Removed { found: true, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::Compact) {
            Response::Compacted { seq, sets, file } => {
                assert_eq!(sets, 1, "tombstoned set must not be compacted");
                assert_eq!(seq, 3);
                assert!(std::path::Path::new(&file).exists());
            }
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::SegGet { id: kept }) {
            Response::SegmentSet {
                id,
                elems: Some(elems),
                segment_seq,
            } => {
                assert_eq!(id, kept);
                assert_eq!(elems, vec![1, 2, 3], "segment stores the canonical set");
                assert_eq!(segment_seq, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::SegGet { id: removed }) {
            Response::SegmentSet { elems: None, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_ops_require_a_durable_server() {
        let server = Server::start(cfg(2)).expect("valid config");
        let h = server.handle();
        match h.call(Request::Compact) {
            Response::Error(msg) => assert!(msg.contains("data-dir"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::SegGet { id: 0 }) {
            Response::Error(msg) => assert!(msg.contains("data-dir"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn seg_get_before_any_compact_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("ssj_serve_nocompact_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            ..cfg(2)
        })
        .expect("valid config");
        let h = server.handle();
        match h.call(Request::SegGet { id: 0 }) {
            Response::Error(msg) => assert!(msg.contains("compact"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calls_after_shutdown_answer_shutting_down() {
        let server = Server::start(cfg(2)).expect("valid config");
        let h = server.handle();
        server.shutdown();
        assert!(h.is_draining());
        assert_eq!(h.call(Request::Stats), Response::ShuttingDown);
    }
}
