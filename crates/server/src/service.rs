//! The concurrent service core: a sharded similarity index behind a
//! bounded worker pool.
//!
//! # Sharding and snapshot consistency
//!
//! The state is `shards` independent [`JaccardIndex`]es, each behind its
//! own `parking_lot::RwLock`. A set is owned by the shard
//! [`ssj_core::index::shard_of`] routes it to, so writes (insert, remove)
//! take exactly one write lock; queries take **all** shard read locks (in
//! ascending shard order — every multi-lock acquisition uses that order,
//! so no deadlock is possible) and merge the per-shard answers.
//!
//! A global sequence counter makes the interleaving observable and exactly
//! checkable: every write increments `seq` *inside* its shard's write
//! critical section, and every query loads `seq` *after* acquiring all
//! read locks. Because a write's increment happens while it excludes
//! readers from its shard, a query that observed `seq = S` sees exactly
//! the writes with sequence number `< S`: a write with a smaller number
//! finished its critical section before the query locked that shard, and
//! a write with a larger number could not have touched any shard until the
//! query released it. Responses carry these numbers (`seq` on writes,
//! `seen_seq` on queries), which is what lets the concurrency tests replay
//! any N-thread run against a single-threaded oracle and demand equality.
//!
//! # Stable global ids
//!
//! Shard-local stable ids (see [`JaccardIndex`]) are encoded as
//! `global = local * shards + shard_index`, so the owning shard is
//! recoverable from any id (`global % shards`) and ids remain valid across
//! shard-internal rebuilds and removals.
//!
//! # Admission control
//!
//! Requests flow through one bounded crossbeam channel. [`Handle::call`]
//! uses `try_send`: a full queue answers [`Response::Overloaded`]
//! immediately rather than blocking the client. Workers check the
//! per-request deadline at dequeue and answer [`Response::Timeout`]
//! without executing expired work. Shutdown flips a draining flag (new
//! calls answer [`Response::ShuttingDown`]), lets queued work finish,
//! then parks one `Stop` sentinel per worker and joins them.

use crate::config::ServerConfig;
use crate::metrics::{ServerMetrics, ShardCounters, ShardCountersSnapshot, StatsSnapshot};
use crossbeam::channel::{self, TrySendError};
use parking_lot::RwLock;
use ssj_core::error::Result as CoreResult;
use ssj_core::index::{shard_of, JaccardIndex};
use ssj_core::set::ElementId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An operation accepted by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Index a set; answers [`Response::Inserted`].
    Insert {
        /// The set's elements (any order, duplicates tolerated).
        elems: Vec<ElementId>,
    },
    /// Remove a set by global id; answers [`Response::Removed`].
    Remove {
        /// A global id previously returned by an insert.
        id: u64,
    },
    /// Find indexed sets within the similarity threshold; answers
    /// [`Response::Matches`].
    Query {
        /// The probe set.
        elems: Vec<ElementId>,
    },
    /// Atomically query then insert (streaming dedup); answers
    /// [`Response::QueryInserted`]. The probe never matches itself.
    QueryInsert {
        /// The set to look up and then index.
        elems: Vec<ElementId>,
    },
    /// Fetch counters; answers [`Response::Stats`].
    Stats,
}

/// The service's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The set was indexed under `id` as write number `seq`.
    Inserted {
        /// Stable global id of the new set.
        id: u64,
        /// This write's global sequence number.
        seq: u64,
    },
    /// The removal executed as write number `seq`.
    Removed {
        /// Whether the id named a live set (false: unknown or already
        /// removed — a no-op, not an error).
        found: bool,
        /// This write's global sequence number.
        seq: u64,
    },
    /// Query results against the snapshot of writes `< seen_seq`.
    Matches {
        /// Global ids of matching sets, ascending.
        ids: Vec<u64>,
        /// The query saw exactly the writes numbered below this.
        seen_seq: u64,
        /// Candidates probed across all shards before verification.
        probed: u64,
    },
    /// Combined answer to [`Request::QueryInsert`].
    QueryInserted {
        /// Global ids of sets matching the probe (excluding itself).
        ids: Vec<u64>,
        /// Stable global id of the newly inserted set.
        id: u64,
        /// This write's sequence number; the query half saw writes `< seq`.
        seq: u64,
        /// Candidates probed across all shards before verification.
        probed: u64,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// The request queue was full; nothing was executed. Retry later.
    Overloaded,
    /// The request's deadline expired while it waited in the queue;
    /// nothing was executed.
    Timeout,
    /// The server is draining; nothing was executed.
    ShuttingDown,
    /// The request was malformed (wire-layer parse or validation failure).
    Error(String),
}

struct Shard {
    index: RwLock<JaccardIndex>,
    counters: ShardCounters,
}

/// The sharded, concurrently usable index facade.
///
/// Usable directly (every method takes `&self`) or behind the worker pool
/// via [`Server`] / [`Handle`].
pub struct ShardedIndex {
    shards: Vec<Shard>,
    seed: u64,
    seq: AtomicU64,
}

impl ShardedIndex {
    /// Creates `cfg.shards` empty shards (clamped to at least one).
    pub fn new(cfg: &ServerConfig) -> CoreResult<Self> {
        let n = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(Shard {
                index: RwLock::new(JaccardIndex::new(
                    cfg.gamma,
                    cfg.initial_max_size,
                    // Independent scheme seeds per shard; derived from the
                    // configured master seed so runs stay reproducible.
                    cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                )?),
                counters: ShardCounters::default(),
            });
        }
        Ok(Self {
            shards,
            seed: cfg.seed,
            seq: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total writes admitted so far.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn canonical(elems: Vec<ElementId>) -> Vec<ElementId> {
        let mut sorted = elems;
        sorted.sort_unstable();
        sorted.dedup();
        sorted
    }

    fn encode_id(&self, local: u32, shard: usize) -> u64 {
        u64::from(local) * self.shards.len() as u64 + shard as u64
    }

    /// Splits a global id into `(shard, local)`; `None` if the local part
    /// exceeds the id domain (such an id was never issued).
    fn decode_id(&self, global: u64) -> Option<(usize, u32)> {
        let n = self.shards.len() as u64;
        let shard = (global % n) as usize;
        let local = u32::try_from(global / n).ok()?;
        Some((shard, local))
    }

    /// Indexes a set; returns its stable global id and write number.
    pub fn insert(&self, elems: Vec<ElementId>) -> (u64, u64) {
        let set = Self::canonical(elems);
        let owner = shard_of(&set, self.shards.len(), self.seed);
        let shard = &self.shards[owner];
        let mut index = shard.index.write();
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let local = index.insert(set);
        drop(index);
        shard.counters.inserts.fetch_add(1, Ordering::Relaxed);
        (self.encode_id(local, owner), seq)
    }

    /// Removes a set by global id; returns whether it was live, and the
    /// write number.
    pub fn remove(&self, global: u64) -> (bool, u64) {
        let Some((owner, local)) = self.decode_id(global) else {
            // Out-of-domain id: provably never issued, so this is a no-op
            // that needs no lock and changes no state.
            return (false, self.seq.load(Ordering::SeqCst));
        };
        let shard = &self.shards[owner];
        let mut index = shard.index.write();
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let found = index.try_remove(local);
        drop(index);
        shard.counters.removes.fetch_add(1, Ordering::Relaxed);
        (found, seq)
    }

    /// Queries all shards against one consistent snapshot; returns the
    /// matching global ids (ascending), the snapshot's sequence number,
    /// and the candidates probed.
    pub fn query(&self, elems: Vec<ElementId>) -> (Vec<u64>, u64, u64) {
        let set = Self::canonical(elems);
        // Ascending shard order (see module docs: deadlock freedom).
        let guards: Vec<_> = self.shards.iter().map(|s| s.index.read()).collect();
        let seen_seq = self.seq.load(Ordering::SeqCst);
        let mut ids = Vec::new();
        let mut probed = 0u64;
        for (i, (shard, guard)) in self.shards.iter().zip(&guards).enumerate() {
            let (matches, shard_probed) = guard.query_counted(&set);
            probed += shard_probed as u64;
            shard.counters.queries.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .candidates_probed
                .fetch_add(shard_probed as u64, Ordering::Relaxed);
            shard
                .counters
                .verified_hits
                .fetch_add(matches.len() as u64, Ordering::Relaxed);
            ids.extend(matches.into_iter().map(|local| self.encode_id(local, i)));
        }
        drop(guards);
        ids.sort_unstable();
        (ids, seen_seq, probed)
    }

    /// Atomically queries then inserts: the returned matches are exactly
    /// the writes numbered below the returned `seq`, and the insert *is*
    /// write `seq`. Returns `(matching ids, new id, seq, probed)`.
    pub fn query_insert(&self, elems: Vec<ElementId>) -> (Vec<u64>, u64, u64, u64) {
        let set = Self::canonical(elems);
        let owner = shard_of(&set, self.shards.len(), self.seed);
        // Write-lock the owner, read-lock the rest, in ascending order.
        let mut write_guard = None;
        let mut read_guards = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            if i == owner {
                write_guard = Some(shard.index.write());
                read_guards.push(None);
            } else {
                read_guards.push(Some(shard.index.read()));
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let mut ids = Vec::new();
        let mut probed = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let result = if i == owner {
                write_guard.as_deref().map(|g| g.query_counted(&set))
            } else {
                read_guards[i].as_deref().map(|g| g.query_counted(&set))
            };
            let (matches, shard_probed) = result.unwrap_or_default();
            probed += shard_probed as u64;
            shard.counters.queries.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .candidates_probed
                .fetch_add(shard_probed as u64, Ordering::Relaxed);
            shard
                .counters
                .verified_hits
                .fetch_add(matches.len() as u64, Ordering::Relaxed);
            ids.extend(matches.into_iter().map(|local| self.encode_id(local, i)));
        }
        let id = match &mut write_guard {
            Some(g) => {
                let local = g.insert(set);
                self.encode_id(local, owner)
            }
            // Unreachable: `owner < shards.len()` always populates it; keep
            // a harmless fallback rather than panic in the service path.
            None => u64::MAX,
        };
        drop(write_guard);
        drop(read_guards);
        self.shards[owner]
            .counters
            .inserts
            .fetch_add(1, Ordering::Relaxed);
        ids.sort_unstable();
        (ids, id, seq, probed)
    }

    /// Per-shard live-set counts, counter snapshots, and the current
    /// sequence number.
    pub fn shard_stats(&self) -> (Vec<u64>, Vec<ShardCountersSnapshot>, u64) {
        let live: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.index.read().len() as u64)
            .collect();
        let counters = self.shards.iter().map(|s| s.counters.snapshot()).collect();
        (live, counters, self.seq())
    }
}

struct Job {
    req: Request,
    enqueued: Instant,
    deadline: Duration,
    reply: std::sync::mpsc::SyncSender<Response>,
}

enum Msg {
    Job(Job),
    Stop,
}

struct Inner {
    index: ShardedIndex,
    metrics: ServerMetrics,
    cfg: ServerConfig,
    draining: AtomicBool,
}

impl Inner {
    fn execute(&self, req: Request) -> Response {
        // Admission validation: reject sets beyond the configured size
        // bound with a clean wire error. Without this (and the index-layer
        // guards underneath), an oversized set could panic a worker — the
        // connection thread would see a dead reply channel and every later
        // client request on that worker would go unanswered.
        let oversized = match &req {
            Request::Insert { elems }
            | Request::Query { elems }
            | Request::QueryInsert { elems } => elems.len() > self.cfg.max_set_len,
            Request::Remove { .. } | Request::Stats => false,
        };
        if oversized {
            return Response::Error(format!(
                "set exceeds the server's max_set_len = {}",
                self.cfg.max_set_len
            ));
        }
        match req {
            Request::Insert { elems } => {
                let (id, seq) = self.index.insert(elems);
                Response::Inserted { id, seq }
            }
            Request::Remove { id } => {
                let (found, seq) = self.index.remove(id);
                Response::Removed { found, seq }
            }
            Request::Query { elems } => {
                let (ids, seen_seq, probed) = self.index.query(elems);
                Response::Matches {
                    ids,
                    seen_seq,
                    probed,
                }
            }
            Request::QueryInsert { elems } => {
                let (ids, id, seq, probed) = self.index.query_insert(elems);
                Response::QueryInserted {
                    ids,
                    id,
                    seq,
                    probed,
                }
            }
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        let (live_sets, shards, seq) = self.index.shard_stats();
        StatsSnapshot {
            live_sets,
            shards,
            seq,
            accepted: self.metrics.accepted.load(Ordering::Relaxed),
            overloaded: self.metrics.overloaded.load(Ordering::Relaxed),
            timeouts: self.metrics.timeouts.load(Ordering::Relaxed),
            queue_wait: self.metrics.queue_wait.snapshot(),
            service_time: self.metrics.service_time.snapshot(),
        }
    }
}

fn worker_loop(inner: Arc<Inner>, rx: channel::Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        let job = match msg {
            Msg::Stop => break,
            Msg::Job(job) => job,
        };
        let waited = job.enqueued.elapsed();
        inner.metrics.queue_wait.record(waited);
        if waited > job.deadline {
            inner.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::Timeout);
            continue;
        }
        if !inner.cfg.worker_delay.is_zero() {
            // Fault-injection pause (tests); see ServerConfig::worker_delay.
            std::thread::sleep(inner.cfg.worker_delay);
        }
        let start = Instant::now();
        let resp = inner.execute(job.req);
        inner.metrics.service_time.record(start.elapsed());
        // A requester that gave up is not an error; drop the response.
        let _ = job.reply.send(resp);
    }
}

/// A running service instance: the sharded index plus its worker pool.
///
/// Obtain [`Handle`]s with [`Server::handle`] and submit requests from any
/// number of threads; call [`Server::shutdown`] (or drop the server) for a
/// graceful drain.
pub struct Server {
    inner: Arc<Inner>,
    tx: channel::Sender<Msg>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the index and spawns the worker pool.
    pub fn start(cfg: ServerConfig) -> CoreResult<Self> {
        let index = ShardedIndex::new(&cfg)?;
        let workers = cfg.effective_workers().max(1);
        let (tx, rx) = channel::bounded::<Msg>(cfg.queue_capacity.max(1));
        let inner = Arc::new(Inner {
            index,
            metrics: ServerMetrics::default(),
            cfg,
            draining: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("ssj-serve-worker-{i}"))
                    .spawn(move || worker_loop(inner, rx))
            })
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(|e| {
                ssj_core::error::SsjError::InvalidParams(format!(
                    "failed to spawn worker threads: {e}"
                ))
            })?;
        Ok(Self {
            inner,
            tx,
            workers: handles,
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> Handle {
        Handle {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
        }
    }

    /// Current counters (without going through the request queue).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Graceful drain: stop admitting, finish queued work, join workers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        // One Stop sentinel per worker, queued *behind* all admitted work
        // (FIFO), so every in-flight request is answered before exit.
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Msg::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// A cheap, cloneable client handle to a [`Server`].
#[derive(Clone)]
pub struct Handle {
    inner: Arc<Inner>,
    tx: channel::Sender<Msg>,
}

impl Handle {
    /// Submits a request with the server's default deadline and waits for
    /// the response. Never blocks on a full queue and never panics: queue
    /// pressure, expiry, and shutdown surface as the corresponding
    /// [`Response`] variants.
    pub fn call(&self, req: Request) -> Response {
        self.call_with_deadline(req, None)
    }

    /// [`Handle::call`] with an explicit queue deadline.
    pub fn call_with_deadline(&self, req: Request, deadline: Option<Duration>) -> Response {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Response::ShuttingDown;
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let job = Job {
            req,
            enqueued: Instant::now(),
            deadline: deadline.unwrap_or(self.inner.cfg.default_deadline),
            reply: reply_tx,
        };
        // Count admission optimistically so a stats request never observes
        // itself missing; rolled back on rejection.
        self.inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(Msg::Job(job)) {
            // A worker always answers; an error means the pool is gone
            // (drain raced the admission check above).
            Ok(()) => reply_rx.recv().unwrap_or(Response::ShuttingDown),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.accepted.fetch_sub(1, Ordering::Relaxed);
                self.inner
                    .metrics
                    .overloaded
                    .fetch_add(1, Ordering::Relaxed);
                Response::Overloaded
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.accepted.fetch_sub(1, Ordering::Relaxed);
                Response::ShuttingDown
            }
        }
    }

    /// Whether the server has begun draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Current counters (without going through the request queue).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> ServerConfig {
        ServerConfig {
            shards,
            workers: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn sharded_index_basic_operations() {
        let idx = ShardedIndex::new(&cfg(4)).expect("valid config");
        let (a, seq_a) = idx.insert(vec![1, 2, 3, 4, 5]);
        let (_b, seq_b) = idx.insert(vec![100, 200, 300]);
        assert_ne!(seq_a, seq_b);
        let (ids, seen, probed) = idx.query(vec![1, 2, 3, 4, 5]);
        assert_eq!(ids, vec![a]);
        assert_eq!(seen, 2);
        assert!(probed >= 1);
        let (found, _) = idx.remove(a);
        assert!(found);
        let (found_again, _) = idx.remove(a);
        assert!(!found_again);
        let (ids, _, _) = idx.query(vec![1, 2, 3, 4, 5]);
        assert!(ids.is_empty());
    }

    #[test]
    fn global_ids_round_trip_through_shards() {
        let idx = ShardedIndex::new(&cfg(3)).expect("valid config");
        let mut ids = Vec::new();
        for i in 0..50u32 {
            let base = i * 100;
            let (id, _) = idx.insert((base..base + 10).collect());
            ids.push(id);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "global ids must be unique");
        for (i, &id) in ids.iter().enumerate() {
            let _ = i;
            let (found, _) = idx.remove(id);
            assert!(found, "id {id} must decode back to its set");
        }
    }

    #[test]
    fn query_insert_excludes_self_and_finds_duplicates() {
        let idx = ShardedIndex::new(&cfg(4)).expect("valid config");
        let (ids, first, seq0, _) = idx.query_insert(vec![1, 2, 3, 4, 5]);
        assert!(ids.is_empty());
        assert_eq!(seq0, 0);
        let (ids, second, seq1, _) = idx.query_insert(vec![1, 2, 3, 4, 5]);
        assert_eq!(ids, vec![first]);
        assert_ne!(second, first);
        assert_eq!(seq1, 1);
    }

    #[test]
    fn out_of_domain_remove_is_a_no_op() {
        let idx = ShardedIndex::new(&cfg(2)).expect("valid config");
        let (found, _) = idx.remove(u64::MAX - 1);
        assert!(!found);
        assert_eq!(idx.seq(), 0, "no write number consumed");
    }

    #[test]
    fn server_round_trip_and_stats() {
        let server = Server::start(cfg(2)).expect("valid config");
        let h = server.handle();
        let resp = h.call(Request::Insert {
            elems: vec![1, 2, 3],
        });
        let id = match resp {
            Response::Inserted { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        match h.call(Request::Query {
            elems: vec![1, 2, 3],
        }) {
            Response::Matches { ids, .. } => assert_eq!(ids, vec![id]),
            other => panic!("unexpected {other:?}"),
        }
        match h.call(Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.live_sets.iter().sum::<u64>(), 1);
                assert_eq!(s.accepted, 3);
                assert_eq!(s.overloaded, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn oversized_sets_answer_error_not_panic() {
        let server = Server::start(ServerConfig {
            max_set_len: 8,
            ..cfg(2)
        })
        .expect("valid config");
        let h = server.handle();
        let big: Vec<u32> = (0..20).collect();
        for req in [
            Request::Insert { elems: big.clone() },
            Request::Query { elems: big.clone() },
            Request::QueryInsert { elems: big },
        ] {
            match h.call(req) {
                Response::Error(msg) => assert!(msg.contains("max_set_len"), "{msg}"),
                other => panic!("expected Error, got {other:?}"),
            }
        }
        // The server survives: in-range requests still work.
        match h.call(Request::Insert {
            elems: vec![1, 2, 3],
        }) {
            Response::Inserted { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn calls_after_shutdown_answer_shutting_down() {
        let server = Server::start(cfg(2)).expect("valid config");
        let h = server.handle();
        server.shutdown();
        assert!(h.is_draining());
        assert_eq!(h.call(Request::Stats), Response::ShuttingDown);
    }
}
