//! Relational operators: hash equi-join, selection, projection, distinct,
//! group-by-count — exactly the operator set the paper's SQL plans use
//! (Figures 11 and 17 are all equi-joins, a `Distinct`, a `Group By ...
//! Count(*)`, and predicate filters).

use crate::table::Table;
use ssj_core::hash::FxHashMap;

/// Projects `table` onto `cols` (optionally renaming via `(src, dst)`).
pub fn project(table: &Table, cols: &[(&str, &str)]) -> Table {
    Table::new(
        table.name(),
        cols.iter()
            .map(|&(src, dst)| (dst, table.col(src).to_vec()))
            .collect(),
    )
}

/// Filters rows by a predicate over materialized rows.
pub fn filter(table: &Table, pred: impl Fn(&[u64]) -> bool) -> Table {
    let schema = table.schema();
    let mut out = Table::empty(table.name(), &schema);
    for r in 0..table.rows() {
        let row = table.row(r);
        if pred(&row) {
            out.push_row(&row);
        }
    }
    out
}

/// Removes duplicate rows (`SELECT DISTINCT`).
pub fn distinct(table: &Table) -> Table {
    let mut rows = table.sorted_rows();
    rows.dedup();
    let schema = table.schema();
    let mut out = Table::empty(table.name(), &schema);
    for row in rows {
        out.push_row(&row);
    }
    out
}

/// Hash equi-join on composite keys. Output columns are
/// `out_left` (from the left table, renamed) followed by `out_right`.
///
/// This is the workhorse of the paper's plans: the signature self-join, the
/// CandPair × Set joins, and the SetLen lookups are all instances.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
    out_left: &[(&str, &str)],
    out_right: &[(&str, &str)],
    out_name: &str,
) -> Table {
    assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
    // Build side: smaller table.
    let (build, probe, build_keys, probe_keys, build_is_left) = if left.rows() <= right.rows() {
        (left, right, left_keys, right_keys, true)
    } else {
        (right, left, right_keys, left_keys, false)
    };
    let bkey_idx: Vec<usize> = build_keys.iter().map(|k| build.col_index(k)).collect();
    let pkey_idx: Vec<usize> = probe_keys.iter().map(|k| probe.col_index(k)).collect();

    let mut index: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
    for r in 0..build.rows() {
        let key: Vec<u64> = bkey_idx.iter().map(|&c| build.value(c, r)).collect();
        index.entry(key).or_default().push(r);
    }

    let mut schema: Vec<&str> = out_left.iter().map(|&(_, d)| d).collect();
    schema.extend(out_right.iter().map(|&(_, d)| d));
    let mut out = Table::empty(out_name, &schema);
    let l_idx: Vec<usize> = out_left.iter().map(|&(s, _)| left.col_index(s)).collect();
    let r_idx: Vec<usize> = out_right.iter().map(|&(s, _)| right.col_index(s)).collect();

    let mut row_buf = Vec::with_capacity(schema.len());
    for pr in 0..probe.rows() {
        let key: Vec<u64> = pkey_idx.iter().map(|&c| probe.value(c, pr)).collect();
        if let Some(matches) = index.get(&key) {
            for &br in matches {
                let (lr, rr) = if build_is_left { (br, pr) } else { (pr, br) };
                row_buf.clear();
                row_buf.extend(l_idx.iter().map(|&c| left.value(c, lr)));
                row_buf.extend(r_idx.iter().map(|&c| right.value(c, rr)));
                out.push_row(&row_buf);
            }
        }
    }
    out
}

/// `ORDER BY` the given columns ascending (stable within ties).
pub fn sort_by(table: &Table, keys: &[&str]) -> Table {
    let key_idx: Vec<usize> = keys.iter().map(|k| table.col_index(k)).collect();
    let mut order: Vec<usize> = (0..table.rows()).collect();
    order.sort_by_key(|&r| {
        key_idx
            .iter()
            .map(|&c| table.value(c, r))
            .collect::<Vec<_>>()
    });
    let schema = table.schema();
    let mut out = Table::empty(table.name(), &schema);
    for r in order {
        out.push_row(&table.row(r));
    }
    out
}

/// `LIMIT n`: the first `n` rows.
pub fn limit(table: &Table, n: usize) -> Table {
    let schema = table.schema();
    let mut out = Table::empty(table.name(), &schema);
    for r in 0..table.rows().min(n) {
        out.push_row(&table.row(r));
    }
    out
}

/// `SELECT keys..., COUNT(*) FROM table GROUP BY keys...`.
pub fn group_count(table: &Table, keys: &[&str], count_name: &str) -> Table {
    let key_idx: Vec<usize> = keys.iter().map(|k| table.col_index(k)).collect();
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for r in 0..table.rows() {
        let key: Vec<u64> = key_idx.iter().map(|&c| table.value(c, r)).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut schema: Vec<&str> = keys.to_vec();
    schema.push(count_name);
    let mut out = Table::empty(table.name(), &schema);
    // Deterministic output order.
    let mut entries: Vec<(Vec<u64>, u64)> = counts.into_iter().collect();
    entries.sort_unstable();
    for (mut key, c) in entries {
        key.push(c);
        out.push_row(&key);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        Table::new(
            "people",
            vec![("id", vec![1, 2, 3]), ("dept", vec![10, 10, 20])],
        )
    }

    #[test]
    fn project_renames() {
        let t = project(&people(), &[("dept", "d")]);
        assert_eq!(t.schema(), vec!["d"]);
        assert_eq!(t.col("d"), &[10, 10, 20]);
    }

    #[test]
    fn filter_rows() {
        let t = filter(&people(), |row| row[1] == 10);
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let t = Table::new("t", vec![("a", vec![1, 1, 2, 1])]);
        assert_eq!(distinct(&t).col("a"), &[1, 2]);
    }

    #[test]
    fn join_basic() {
        let depts = Table::new("depts", vec![("did", vec![10, 20]), ("boss", vec![7, 8])]);
        let joined = hash_join(
            &people(),
            &depts,
            &["dept"],
            &["did"],
            &[("id", "id")],
            &[("boss", "boss")],
            "j",
        );
        assert_eq!(
            joined.sorted_rows(),
            vec![vec![1, 7], vec![2, 7], vec![3, 8]]
        );
    }

    #[test]
    fn join_composite_keys() {
        let a = Table::new(
            "a",
            vec![
                ("x", vec![1, 1, 2]),
                ("y", vec![5, 6, 5]),
                ("v", vec![100, 101, 102]),
            ],
        );
        let b = Table::new(
            "b",
            vec![("x", vec![1, 2]), ("y", vec![5, 5]), ("w", vec![9, 8])],
        );
        let joined = hash_join(
            &a,
            &b,
            &["x", "y"],
            &["x", "y"],
            &[("v", "v")],
            &[("w", "w")],
            "j",
        );
        assert_eq!(joined.sorted_rows(), vec![vec![100, 9], vec![102, 8]]);
    }

    #[test]
    fn join_self() {
        // Self-join on a shared column, as the signature CandPair query does.
        let sig = Table::new("sig", vec![("id", vec![1, 2, 3]), ("sign", vec![7, 7, 9])]);
        let joined = hash_join(
            &sig,
            &sig,
            &["sign"],
            &["sign"],
            &[("id", "id1")],
            &[("id", "id2")],
            "cand",
        );
        let pairs = filter(&joined, |row| row[0] < row[1]);
        assert_eq!(pairs.sorted_rows(), vec![vec![1, 2]]);
    }

    #[test]
    fn group_count_counts() {
        let t = Table::new("t", vec![("k", vec![1, 1, 2]), ("v", vec![0, 0, 0])]);
        let g = group_count(&t, &["k"], "n");
        assert_eq!(g.sorted_rows(), vec![vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn sort_and_limit() {
        let t = Table::new(
            "t",
            vec![("k", vec![3, 1, 2, 1]), ("v", vec![30, 10, 20, 11])],
        );
        let sorted = sort_by(&t, &["k", "v"]);
        assert_eq!(
            sorted.sorted_rows(),
            vec![vec![1, 10], vec![1, 11], vec![2, 20], vec![3, 30]]
        );
        assert_eq!(sorted.col("k"), &[1, 1, 2, 3]);
        let top2 = limit(&sorted, 2);
        assert_eq!(top2.rows(), 2);
        assert_eq!(top2.col("v"), &[10, 11]);
        assert_eq!(limit(&t, 100).rows(), 4);
    }

    #[test]
    fn empty_join_yields_empty() {
        let a = Table::empty("a", &["x"]);
        let b = Table::new("b", vec![("x", vec![1])]);
        let j = hash_join(&a, &b, &["x"], &["x"], &[("x", "ax")], &[("x", "bx")], "j");
        assert_eq!(j.rows(), 0);
    }
}
