//! Column-major in-memory tables.
//!
//! The paper implements SSJoin "over a regular DBMS using a small amount of
//! application-level code" (Section 8, Figures 10/11/16/17). This module is
//! the minimal relational substrate those plans need: named `u64` columns,
//! equal-length, with row-oriented accessors for the operators in
//! [`crate::ops`].

use std::fmt;

/// A named column of `u64` values (ids, hashed elements, hashed signatures,
/// counts — everything in the paper's schemas is integral; "we used 32 bit
/// integers for all the columns, with appropriate hashing").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Values, one per row.
    pub data: Vec<u64>,
}

/// A relation: equal-length named columns.
#[derive(Clone, PartialEq, Eq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates a table from `(name, values)` columns.
    ///
    /// # Panics
    /// Panics if column lengths differ or names repeat.
    pub fn new(name: &str, columns: Vec<(&str, Vec<u64>)>) -> Self {
        let mut cols = Vec::with_capacity(columns.len());
        let mut len: Option<usize> = None;
        for (cname, data) in columns {
            if let Some(l) = len {
                assert_eq!(
                    l,
                    data.len(),
                    "column {cname} length mismatch in table {name}"
                );
            }
            len = Some(data.len());
            assert!(
                cols.iter().all(|c: &Column| c.name != cname),
                "duplicate column {cname} in table {name}"
            );
            cols.push(Column {
                name: cname.to_string(),
                data,
            });
        }
        Self {
            name: name.to_string(),
            columns: cols,
        }
    }

    /// An empty table with the given schema.
    pub fn empty(name: &str, schema: &[&str]) -> Self {
        Self::new(name, schema.iter().map(|&c| (c, Vec::new())).collect())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Column names in order.
    pub fn schema(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column.
    ///
    /// # Panics
    /// Panics when the column does not exist (schema errors are bugs).
    pub fn col_index(&self, name: &str) -> usize {
        let idx = self.columns.iter().position(|c| c.name == name);
        assert!(idx.is_some(), "table {} has no column {name}", self.name);
        idx.unwrap_or(0)
    }

    /// The values of a column.
    pub fn col(&self, name: &str) -> &[u64] {
        &self.columns[self.col_index(name)].data
    }

    /// One cell.
    pub fn value(&self, col: usize, row: usize) -> u64 {
        self.columns[col].data[row]
    }

    /// Materializes one row (for filters and tests).
    pub fn row(&self, row: usize) -> Vec<u64> {
        self.columns.iter().map(|c| c.data[row]).collect()
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the value count does not match the schema.
    pub fn push_row(&mut self, values: &[u64]) {
        assert_eq!(values.len(), self.columns.len(), "arity mismatch");
        for (c, &v) in self.columns.iter_mut().zip(values) {
            c.data.push(v);
        }
    }

    /// All rows, materialized and sorted — a canonical form for comparisons.
    pub fn sorted_rows(&self) -> Vec<Vec<u64>> {
        let mut rows: Vec<Vec<u64>> = (0..self.rows()).map(|r| self.row(r)).collect();
        rows.sort_unstable();
        rows
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Table({} {:?} rows={})",
            self.name,
            self.schema(),
            self.rows()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Table::new("t", vec![("id", vec![1, 2, 3]), ("x", vec![10, 20, 30])]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.schema(), vec!["id", "x"]);
        assert_eq!(t.col("x"), &[10, 20, 30]);
        assert_eq!(t.row(1), vec![2, 20]);
        assert_eq!(t.value(0, 2), 3);
    }

    #[test]
    fn push_row_grows_all_columns() {
        let mut t = Table::empty("t", &["a", "b"]);
        t.push_row(&[1, 2]);
        t.push_row(&[3, 4]);
        assert_eq!(t.sorted_rows(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unequal_columns_panic() {
        Table::new("t", vec![("a", vec![1]), ("b", vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_panic() {
        Table::new("t", vec![("a", vec![]), ("a", vec![])]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        Table::empty("t", &["a"]).col("zzz");
    }
}
