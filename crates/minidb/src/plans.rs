//! The paper's DBMS execution plans, replayed on the mini engine.
//!
//! * [`jaccard_plan`] — Figures 10–11: `Set(id, elem)` →
//!   `Signature(id, sign)` (application code) → `CandPair` (signature
//!   self-join) → `CandPairIntersect` (two joins with `Set` + group-count) →
//!   `Output` (join with `SetLen`, jaccard predicate on intersection size).
//! * [`string_plan`] — Figures 16–17: `String(id, str)` →
//!   `Signature` → `CandPair` → `Output` via an `EDIT(s1, s2) ≤ k` filter in
//!   application code.
//!
//! These exist to demonstrate (and test) the paper's claim that the
//! algorithms "can be implemented over a regular DBMS using a small amount
//! of application-level code": the plan results are asserted equal to the
//! native pipeline's output in this workspace's integration tests.

use crate::ops::{distinct, filter, group_count, hash_join, project};
use crate::table::Table;
use ssj_core::predicate::EPS;
use ssj_core::set::{SetCollection, SetId};
use ssj_core::signature::SignatureScheme;
use ssj_text::within_edit_distance;

/// Builds the first-normal-form `Set(id, elem)` relation of Figure 10.
pub fn set_table(collection: &SetCollection) -> Table {
    let mut ids = Vec::with_capacity(collection.total_elements());
    let mut elems = Vec::with_capacity(collection.total_elements());
    for (id, set) in collection.iter() {
        for &e in set {
            ids.push(id as u64);
            elems.push(e as u64);
        }
    }
    Table::new("Set", vec![("id", ids), ("elem", elems)])
}

/// Builds `SetLen(id, len)` (materialized in advance in the paper).
pub fn setlen_table(collection: &SetCollection) -> Table {
    let ids: Vec<u64> = (0..collection.len() as u64).collect();
    let lens: Vec<u64> = (0..collection.len())
        .map(|i| collection.len_of(i as SetId) as u64)
        .collect();
    Table::new("SetLen", vec![("id", ids), ("len", lens)])
}

/// Step 1–2 of Figure 10: scan `Set`, generate signatures in application
/// code, produce `Signature(id, sign)`.
pub fn signature_table(collection: &SetCollection, scheme: &impl SignatureScheme) -> Table {
    let mut ids = Vec::new();
    let mut signs = Vec::new();
    let mut buf = Vec::new();
    for (id, set) in collection.iter() {
        buf.clear();
        scheme.signatures_into(set, &mut buf);
        buf.sort_unstable();
        buf.dedup();
        for &sig in &buf {
            ids.push(id as u64);
            signs.push(sig);
        }
    }
    Table::new("Signature", vec![("id", ids), ("sign", signs)])
}

/// Figure 11, `CandPair`:
/// `SELECT DISTINCT S1.id, S2.id FROM Signature S1, Signature S2
///  WHERE S1.Sign = S2.Sign AND S1.id < S2.id`.
pub fn cand_pair(signature: &Table) -> Table {
    let joined = hash_join(
        signature,
        signature,
        &["sign"],
        &["sign"],
        &[("id", "id1")],
        &[("id", "id2")],
        "CandPair",
    );
    distinct(&filter(&joined, |row| row[0] < row[1]))
}

/// Figure 11, `CandPairIntersect`: join `CandPair` with `Set` twice on ids
/// and equal elements, group by the pair, count.
pub fn cand_pair_intersect(cand: &Table, set: &Table) -> Table {
    // C ⋈ S1 on C.id1 = S1.id.
    let step1 = hash_join(
        cand,
        set,
        &["id1"],
        &["id"],
        &[("id1", "id1"), ("id2", "id2")],
        &[("elem", "elem")],
        "c_s1",
    );
    // ... ⋈ S2 on id2 = S2.id AND elem = S2.elem.
    let step2 = hash_join(
        &step1,
        set,
        &["id2", "elem"],
        &["id", "elem"],
        &[("id1", "id1"), ("id2", "id2")],
        &[],
        "c_s1_s2",
    );
    group_count(&step2, &["id1", "id2"], "isize")
}

/// Figure 11, `Output`: join `CandPairIntersect` with `SetLen` twice and
/// keep pairs with `isize ≥ (len1 + len2 − isize) · γ`.
pub fn jaccard_output(intersect: &Table, setlen: &Table, gamma: f64) -> Table {
    let with_l1 = hash_join(
        intersect,
        setlen,
        &["id1"],
        &["id"],
        &[("id1", "id1"), ("id2", "id2"), ("isize", "isize")],
        &[("len", "len1")],
        "i_l1",
    );
    let with_l2 = hash_join(
        &with_l1,
        setlen,
        &["id2"],
        &["id"],
        &[
            ("id1", "id1"),
            ("id2", "id2"),
            ("isize", "isize"),
            ("len1", "len1"),
        ],
        &[("len", "len2")],
        "i_l1_l2",
    );
    let kept = filter(&with_l2, |row| {
        let (isize_, len1, len2) = (row[2] as f64, row[3] as f64, row[4] as f64);
        isize_ + EPS >= (len1 + len2 - isize_) * gamma
    });
    project(&kept, &[("id1", "id1"), ("id2", "id2")])
}

/// The full Figure 10 pipeline: returns the output pairs of a jaccard
/// self-SSJoin executed as the paper's query plan.
///
/// ```
/// use ssj_core::partenum::PartEnumJaccard;
/// use ssj_core::set::SetCollection;
///
/// let collection: SetCollection =
///     vec![vec![1, 2, 3, 4], vec![1, 2, 3, 4, 5], vec![9, 10]].into_iter().collect();
/// let scheme = PartEnumJaccard::new(0.8, collection.max_set_len(), 1).unwrap();
/// let pairs = ssj_minidb::jaccard_plan(&collection, &scheme, 0.8);
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
pub fn jaccard_plan(
    collection: &SetCollection,
    scheme: &impl SignatureScheme,
    gamma: f64,
) -> Vec<(SetId, SetId)> {
    let set = set_table(collection);
    let setlen = setlen_table(collection);
    let signature = signature_table(collection, scheme);
    let cand = cand_pair(&signature);
    let intersect = cand_pair_intersect(&cand, &set);
    let output = jaccard_output(&intersect, &setlen, gamma);
    let mut pairs: Vec<(SetId, SetId)> = (0..output.rows())
        .map(|r| (output.value(0, r) as SetId, output.value(1, r) as SetId))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// The full Figure 16 pipeline: edit-distance string join as the paper's
/// plan — `Signature` from gram sets, `CandPair`, then the
/// `EDIT(S1.Str, S2.Str) ≤ k` check in application code (Figure 17's last
/// query; note the paper deliberately skips the SSJoin post-filter here).
pub fn string_plan(
    strings: &[String],
    scheme: &impl SignatureScheme,
    gram: usize,
    k: usize,
) -> Vec<(u32, u32)> {
    let collection: SetCollection = strings
        .iter()
        .map(|s| ssj_text::qgram_set(s, gram))
        .collect();
    let signature = signature_table(&collection, scheme);
    let cand = cand_pair(&signature);
    let output = filter(&cand, |row| {
        within_edit_distance(&strings[row[0] as usize], &strings[row[1] as usize], k)
    });
    let mut pairs: Vec<(u32, u32)> = (0..output.rows())
        .map(|r| (output.value(0, r) as u32, output.value(1, r) as u32))
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::join::{self_join, JoinOptions};
    use ssj_core::partenum::PartEnumJaccard;
    use ssj_core::predicate::Predicate;

    fn sample_collection() -> SetCollection {
        vec![
            vec![1, 2, 3, 4, 5],
            vec![1, 2, 3, 4, 5, 6],
            vec![10, 11, 12],
            vec![10, 11, 12, 13],
            vec![20, 21],
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn set_table_is_first_normal_form() {
        let c = sample_collection();
        let t = set_table(&c);
        assert_eq!(t.rows(), c.total_elements());
        assert_eq!(t.schema(), vec!["id", "elem"]);
    }

    #[test]
    fn setlen_matches_collection() {
        let c = sample_collection();
        let t = setlen_table(&c);
        assert_eq!(t.col("len"), &[5, 6, 3, 4, 2]);
    }

    #[test]
    fn plan_matches_native_pipeline() {
        let c = sample_collection();
        let gamma = 0.7;
        let scheme = PartEnumJaccard::new(gamma, c.max_set_len(), 3).unwrap();
        let plan_pairs = jaccard_plan(&c, &scheme, gamma);
        let mut native = self_join(
            &scheme,
            &c,
            Predicate::Jaccard { gamma },
            None,
            JoinOptions::default(),
        )
        .pairs;
        native.sort_unstable();
        assert_eq!(plan_pairs, native);
        assert!(plan_pairs.contains(&(0, 1)));
        assert!(plan_pairs.contains(&(2, 3)));
    }

    #[test]
    fn string_plan_matches_pipeline() {
        use ssj_core::partenum::PartEnumHamming;
        let strings: Vec<String> = vec![
            "148th ave ne".into(),
            "147th ave ne".into(),
            "main street".into(),
            "maine street".into(),
            "unrelated record".into(),
        ];
        let k = 1;
        let gram = 1;
        let scheme = PartEnumHamming::with_defaults(2 * gram * k, 5);
        let pairs = string_plan(&strings, &scheme, gram, k);
        let native =
            ssj_text::edit_distance_self_join(&strings, ssj_text::EditJoinConfig::partenum(k))
                .unwrap();
        let mut native_pairs = native.pairs;
        native_pairs.sort_unstable();
        assert_eq!(pairs, native_pairs);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
    }
}
