//! # ssj-minidb — a mini relational engine for the paper's query plans
//!
//! The paper's implementation strategy (Section 8) runs most of the SSJoin
//! inside a DBMS: signatures are generated in application code, then
//! candidate generation and post-filtering are plain SQL (Figures 10–11 for
//! jaccard, 16–17 for edit distance). This crate provides the minimal
//! column-engine ([`table`], [`ops`]) needed to replay those exact plans
//! ([`plans`]), so the repository can validate that the "DBMS + thin
//! application shim" implementation produces identical answers to the
//! native pipeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ops;
pub mod plans;
pub mod table;

pub use ops::{distinct, filter, group_count, hash_join, limit, project, sort_by};
pub use plans::{
    cand_pair, cand_pair_intersect, jaccard_output, jaccard_plan, set_table, setlen_table,
    signature_table, string_plan,
};
pub use table::{Column, Table};
