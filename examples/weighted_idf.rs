//! Weighted SSJoin with IDF weights (Section 7): rare tokens count more
//! than ubiquitous ones, so "acme robotics llc seattle wa" matches
//! "acme robotics seattle wa" even though it shares the frequent tokens
//! "seattle wa" with thousands of records. Uses WtEnum — the paper's
//! weighted-enumeration scheme — and cross-checks against the naive oracle.
//!
//! ```text
//! cargo run --release --example weighted_idf
//! ```

use ssjoin::baselines::NaiveJoin;
use ssjoin::datagen::{generate_addresses, AddressConfig};
use ssjoin::prelude::*;
use ssjoin::text::tokenize_with_idf;
use std::sync::Arc;

fn main() {
    let records = generate_addresses(AddressConfig {
        base_records: 2_000,
        duplicate_fraction: 0.3,
        max_typos: 1,
        drop_token_prob: 0.3,
        seed: 11,
    });
    let (collection, weights) = tokenize_with_idf(&records, 0x1df);
    println!(
        "{} records tokenized; {} distinct weighted tokens",
        collection.len(),
        weights.len()
    );

    let gamma = 0.8;
    let pred = Predicate::WeightedJaccard { gamma };
    let max_weight = collection
        .iter()
        .map(|(_, s)| weights.set_weight(s))
        .fold(0.0f64, f64::max);

    let scheme = WtEnumJaccard::new(
        gamma,
        max_weight,
        WtEnum::recommended_th(collection.len()),
        Arc::clone(&weights),
    );
    let result = self_join(
        &scheme,
        &collection,
        pred,
        Some(&weights),
        JoinOptions::default(),
    );
    println!(
        "WtEnum at weighted-jaccard >= {gamma}: {} candidates -> {} matches, {:.2}s",
        result.stats.candidate_pairs,
        result.stats.output_pairs,
        result.stats.total_secs()
    );

    // Exactness check against the brute-force oracle.
    let mut expected = NaiveJoin::self_join(&collection, pred, Some(&weights));
    expected.sort_unstable();
    let mut got = result.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, expected, "WtEnum is exact");
    println!("verified against the O(n²) oracle: exact.");

    println!("\nthree example matches:");
    for &(a, b) in result.pairs.iter().take(3) {
        println!("  | {}\n  | {}\n", records[a as usize], records[b as usize]);
    }
}
