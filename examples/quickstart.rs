//! Quickstart: find all pairs of similar sets in a collection, exactly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssjoin::prelude::*;

fn main() {
    // Sets over an arbitrary u32 element domain — in practice, hashed tokens.
    let collection: SetCollection = vec![
        vec![1, 2, 3, 4, 5],    // 0
        vec![1, 2, 3, 4, 5, 6], // 1: jaccard 5/6 ≈ 0.83 with set 0
        vec![10, 11, 12, 13],   // 2
        vec![10, 11, 12, 14],   // 3: jaccard 3/5 = 0.6 with set 2
        vec![100, 200, 300],    // 4: similar to nothing
    ]
    .into_iter()
    .collect();

    let gamma = 0.8;

    // PartEnum is exact: the result is guaranteed complete.
    let scheme = PartEnumJaccard::new(gamma, collection.max_set_len(), 42).expect("0 < gamma <= 1");
    let result = self_join(
        &scheme,
        &collection,
        Predicate::Jaccard { gamma },
        None,
        JoinOptions::default(),
    );

    println!("pairs with jaccard >= {gamma}:");
    for (a, b) in &result.pairs {
        println!(
            "  sets {a} and {b}: {:?} ~ {:?}",
            collection.set(*a),
            collection.set(*b)
        );
    }
    assert_eq!(result.pairs, vec![(0, 1)]);

    let s = &result.stats;
    println!(
        "\nstats: {} signatures, {} candidates, {} output, F2 = {}",
        s.total_signatures(),
        s.candidate_pairs,
        s.output_pairs,
        s.f2()
    );
    println!("exact: {}", !result.approximate);
}
