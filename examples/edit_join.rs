//! Edit-distance string similarity join (Section 8.2): find all address
//! strings within edit distance k, comparing the paper's two exact
//! configurations — PartEnum over 1-grams vs prefix filter over 4-grams.
//!
//! ```text
//! cargo run --release --example edit_join
//! ```

use ssjoin::datagen::{generate_addresses, AddressConfig};
use ssjoin::text::{edit_distance_self_join, levenshtein, EditJoinConfig};

fn main() {
    let strings = generate_addresses(AddressConfig {
        base_records: 3_000,
        duplicate_fraction: 0.3,
        max_typos: 1,
        drop_token_prob: 0.0,
        seed: 3,
    });
    let k = 2;
    println!("{} strings, edit threshold k = {k}\n", strings.len());

    let pen = edit_distance_self_join(&strings, EditJoinConfig::partenum(k)).unwrap();
    println!(
        "PEN (1-grams):   {:>8} candidates  {:>6} matches  {:.2}s",
        pen.stats.candidate_pairs,
        pen.pairs.len(),
        pen.stats.total_secs()
    );

    let pf = edit_distance_self_join(&strings, EditJoinConfig::prefix_filter(k, 4)).unwrap();
    println!(
        "PF  (4-grams):   {:>8} candidates  {:>6} matches  {:.2}s",
        pf.stats.candidate_pairs,
        pf.pairs.len(),
        pf.stats.total_secs()
    );

    // Both are exact, so they agree.
    assert_eq!(pen.pairs.len(), pf.pairs.len());

    println!("\nthree example matches:");
    for &(a, b) in pen.pairs.iter().take(3) {
        let (sa, sb) = (&strings[a as usize], &strings[b as usize]);
        println!("  d={} | {sa}\n        | {sb}", levenshtein(sa, sb));
    }
}
