//! Data-cleaning scenario (the paper's motivating application): detect
//! duplicate address records that differ by typos and formatting, using an
//! exact jaccard SSJoin over token sets, then group matches into clusters.
//!
//! ```text
//! cargo run --release --example address_dedup
//! ```

use ssjoin::datagen::{generate_addresses, AddressConfig};
use ssjoin::prelude::*;
use ssjoin::text::token_set;

/// Union-find over record ids, to turn matched pairs into clusters.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        if self.parent[x as usize] != x {
            let root = self.find(self.parent[x as usize]);
            self.parent[x as usize] = root;
        }
        self.parent[x as usize]
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    // 4,000 clean records + 1,000 noisy duplicates.
    let records = generate_addresses(AddressConfig {
        base_records: 4_000,
        duplicate_fraction: 0.25,
        max_typos: 2,
        drop_token_prob: 0.2,
        seed: 7,
    });
    println!(
        "{} address records (1,000 are noisy duplicates)",
        records.len()
    );

    let collection: SetCollection = records.iter().map(|s| token_set(s, 0xdedb)).collect();

    let gamma = 0.75;
    let scheme = PartEnumJaccard::new(gamma, collection.max_set_len(), 7).expect("0 < gamma <= 1");
    let result = self_join(
        &scheme,
        &collection,
        Predicate::Jaccard { gamma },
        None,
        JoinOptions::parallel(4),
    );
    println!(
        "join at jaccard >= {gamma}: {} candidate pairs -> {} matches \
         ({:.1}% filter precision), {:.2}s",
        result.stats.candidate_pairs,
        result.stats.output_pairs,
        100.0 * result.stats.precision(),
        result.stats.total_secs(),
    );

    // Cluster the matches.
    let mut dsu = Dsu::new(records.len());
    for &(a, b) in &result.pairs {
        dsu.union(a, b);
    }
    let mut clusters: std::collections::HashMap<u32, Vec<u32>> = Default::default();
    for id in 0..records.len() as u32 {
        clusters.entry(dsu.find(id)).or_default().push(id);
    }
    let mut multi: Vec<&Vec<u32>> = clusters.values().filter(|c| c.len() > 1).collect();
    multi.sort_by_key(|c| std::cmp::Reverse(c.len()));

    println!("\n{} duplicate clusters; three examples:", multi.len());
    for cluster in multi.iter().take(3) {
        println!("  cluster:");
        for &id in cluster.iter() {
            println!("    [{id}] {}", records[id as usize]);
        }
    }
    assert!(!multi.is_empty(), "planted duplicates must be found");
}
