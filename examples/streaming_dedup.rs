//! Streaming deduplication with a similarity index: records arrive one at a
//! time (the "data cleaning on-the-fly during query evaluation" setting the
//! paper cites [12]); each is checked against everything seen so far before
//! being admitted. Uses [`JaccardIndex`], the incremental proximity-search
//! structure built on PartEnum signatures (the direction Section 9 leaves
//! open).
//!
//! ```text
//! cargo run --release --example streaming_dedup
//! ```

use ssjoin::datagen::{generate_addresses, AddressConfig};
use ssjoin::prelude::*;
use ssjoin::text::token_set;
use std::time::Instant;

fn main() {
    let records = generate_addresses(AddressConfig {
        base_records: 8_000,
        duplicate_fraction: 0.25,
        max_typos: 1,
        drop_token_prob: 0.1,
        seed: 21,
    });
    println!(
        "streaming {} records (2,000 are noisy duplicates)...\n",
        records.len()
    );

    let gamma = 0.75;
    let mut index = JaccardIndex::new(gamma, 32, 9).expect("0 < gamma <= 1");
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut first_rejects: Vec<(String, String)> = Vec::new();

    let start = Instant::now();
    for record in &records {
        let tokens = token_set(record, 0xfeed);
        let matches = index.query(&tokens);
        if let Some(&dup_of) = matches.first() {
            rejected += 1;
            if first_rejects.len() < 3 {
                // Recover the original record for display: ids are insertion
                // order over admitted records only.
                first_rejects.push((record.clone(), format!("existing id {dup_of}")));
            }
        } else {
            index.insert(tokens);
            admitted += 1;
        }
    }
    let elapsed = start.elapsed();

    println!(
        "admitted {admitted}, rejected {rejected} near-duplicates in {:.2}s \
         ({:.0} records/s)",
        elapsed.as_secs_f64(),
        records.len() as f64 / elapsed.as_secs_f64()
    );
    println!("\nfirst rejected records:");
    for (rec, dup) in &first_rejects {
        println!("  {rec}   (matches {dup})");
    }
    assert!(rejected > 500, "planted duplicates should be caught");
    assert_eq!(admitted + rejected, records.len());
}
