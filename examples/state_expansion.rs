//! The paper's Figure 1 scenario: two tables store (City, State) rows, one
//! with abbreviated states ("CA") and one with expanded names
//! ("California"). There is no syntactic similarity between "CA" and
//! "California" — but their associated *city sets* overlap heavily, so a
//! binary SSJoin over per-state city sets reconciles the representations.
//!
//! ```text
//! cargo run --release --example state_expansion
//! ```

use ssjoin::prelude::*;
use ssjoin::text::token_set;
use std::collections::BTreeMap;

fn city_sets(rows: &[(&str, &str)]) -> (Vec<String>, SetCollection) {
    // Group cities by state, preserving a stable state order.
    let mut by_state: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for &(city, state) in rows {
        // Hash the whole city name as one element (cities are multi-word).
        let elem = token_set(&city.replace(' ', "_"), 0xc17e)[0];
        by_state.entry(state).or_default().push(elem);
    }
    let mut names = Vec::new();
    let mut collection = SetCollection::new();
    for (state, cities) in by_state {
        names.push(state.to_string());
        collection.push(cities);
    }
    (names, collection)
}

fn main() {
    // The two tables of Figure 1 (slightly extended).
    let abbreviated: Vec<(&str, &str)> = vec![
        ("los angeles", "CA"),
        ("palo alto", "CA"),
        ("san diego", "CA"),
        ("santa barbara", "CA"),
        ("san francisco", "CA"),
        ("seattle", "WA"),
        ("tacoma", "WA"),
        ("spokane", "WA"),
        ("portland", "OR"),
        ("salem", "OR"),
    ];
    let expanded: Vec<(&str, &str)> = vec![
        ("los angeles", "California"),
        ("san diego", "California"),
        ("santa barbara", "California"),
        ("san francisco", "California"),
        ("sacramento", "California"),
        ("seattle", "Washington"),
        ("tacoma", "Washington"),
        ("bellingham", "Washington"),
        ("portland", "Oregon"),
        ("salem", "Oregon"),
        ("eugene", "Oregon"),
    ];

    let (abbr_names, abbr_sets) = city_sets(&abbreviated);
    let (full_names, full_sets) = city_sets(&expanded);

    // Binary SSJoin: states whose city sets share at least half their union.
    let gamma = 0.5;
    let max_len = abbr_sets.max_set_len().max(full_sets.max_set_len());
    let scheme = PartEnumJaccard::new(gamma, max_len, 1).expect("0 < gamma <= 1");
    let result = join(
        &scheme,
        &abbr_sets,
        &full_sets,
        Predicate::Jaccard { gamma },
        None,
        JoinOptions::default(),
    );

    println!("state-name reconciliation via city-set similarity (γ = {gamma}):");
    let mut matched = Vec::new();
    for &(a, b) in &result.pairs {
        let abbr = &abbr_names[a as usize];
        let full = &full_names[b as usize];
        println!("  {abbr}  <->  {full}");
        matched.push((abbr.clone(), full.clone()));
    }
    matched.sort();
    assert_eq!(
        matched,
        vec![
            ("CA".to_string(), "California".to_string()),
            ("OR".to_string(), "Oregon".to_string()),
            ("WA".to_string(), "Washington".to_string()),
        ]
    );
    println!("\nall three states reconciled with zero syntactic similarity.");
}
