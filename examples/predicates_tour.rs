//! A tour of the general SSJoin predicate class (Section 6): the same
//! GeneralPartEnum machinery evaluates jaccard, hamming, dice, cosine, and
//! the paper's `|r∩s| ≥ γ·max(|r|,|s|)` example — and correctly refuses
//! plain intersection thresholds, which lack the size/hamming bounds the
//! construction needs (those go to WtEnum or Probe-Count instead).
//!
//! ```text
//! cargo run --release --example predicates_tour
//! ```

use ssjoin::baselines::{NaiveJoin, ProbeCount};
use ssjoin::datagen::{generate_zipf, ZipfConfig};
use ssjoin::prelude::*;

fn main() {
    let base = generate_zipf(ZipfConfig {
        sets: 2_000,
        mean_size: 12,
        domain: 3_000,
        alpha: 1.0,
        seed: 42,
    });
    // Plant near-duplicates so every predicate has output: clone every 10th
    // set with one element swapped.
    let mut sets: Vec<Vec<u32>> = base.iter().map(|(_, s)| s.to_vec()).collect();
    for i in (0..base.len()).step_by(10) {
        let mut dup = sets[i].clone();
        if !dup.is_empty() {
            let last = dup.len() - 1;
            dup[last] = 5_000 + i as u32; // outside the Zipf domain
        }
        sets.push(dup);
    }
    let collection: SetCollection = sets.into_iter().collect();
    println!(
        "{} Zipf-skewed sets (mean size {:.1})\n",
        collection.len(),
        collection.avg_set_len()
    );

    let predicates = [
        Predicate::Jaccard { gamma: 0.8 },
        Predicate::Hamming { k: 2 },
        Predicate::Dice { gamma: 0.9 },
        Predicate::Cosine { gamma: 0.9 },
        Predicate::MaxFraction { gamma: 0.85 },
    ];
    println!(
        "{:<34} {:>8} {:>10} {:>9}",
        "predicate", "matches", "candidates", "seconds"
    );
    for pred in predicates {
        let scheme = GeneralPartEnum::new(pred, collection.max_set_len(), 7)
            .expect("all of these are in the Section 6 class");
        let result = self_join(&scheme, &collection, pred, None, JoinOptions::default());
        println!(
            "{:<34} {:>8} {:>10} {:>9.3}",
            format!("{pred:?}"),
            result.stats.output_pairs,
            result.stats.candidate_pairs,
            result.stats.total_secs()
        );
        // Exactness spot-check against the oracle.
        let mut expected = NaiveJoin::self_join(&collection, pred, None);
        expected.sort_unstable();
        let mut got = result.pairs;
        got.sort_unstable();
        assert_eq!(got, expected, "{pred:?} must be exact");
    }

    // Plain overlap thresholds are outside the class...
    let overlap = Predicate::Overlap { t: 6 };
    let rejected = GeneralPartEnum::new(overlap, collection.max_set_len(), 7);
    println!(
        "\nGeneralPartEnum rejects {overlap:?}: {}",
        rejected.expect_err("must be rejected")
    );

    // ...but Probe-Count handles them exactly.
    let pc = ProbeCount::self_join(&collection, overlap, None);
    let mut expected = NaiveJoin::self_join(&collection, overlap, None);
    expected.sort_unstable();
    assert_eq!(pc.pairs, expected);
    println!(
        "Probe-Count handles it instead: {} matches (verified exact).",
        pc.pairs.len()
    );
}
